//! Learning agents in physical units.
//!
//! The bandit layer works on unit hypercubes; this module binds it to the
//! testbed's [`ContextObs`]/[`ControlInput`]/[`PeriodObservation`] types
//! and the [`ProblemSpec`], so callers never touch grid indices.

use crate::problem::ProblemSpec;
use edgebol_bandit::{
    Constraints, ControlGrid, Ddpg, DdpgConfig, EdgeBol, EdgeBolConfig, EpsGreedy, Feedback,
    GridAgent,
};
use edgebol_testbed::{ContextObs, ControlInput, PeriodObservation};

/// A period-level learning agent in physical units.
///
/// `Send` so an orchestrator owning the agent can be driven from a worker
/// thread (the parallel multi-seed runner in `edgebol-bench`).
pub trait Agent: Send {
    /// Chooses the control policy for the observed context.
    fn select(&mut self, ctx: &ContextObs) -> ControlInput;

    /// Records the period's outcome.
    fn update(&mut self, ctx: &ContextObs, control: &ControlInput, obs: &PeriodObservation);

    /// Changes the constraint setting at runtime (Fig. 14 events).
    fn set_constraints(&mut self, d_max: f64, rho_min: f64);

    /// Estimated safe-set size for a context, when the agent maintains
    /// one (EdgeBOL does; parametric baselines return `None`).
    fn safe_set_size(&mut self, _ctx: &ContextObs) -> Option<usize> {
        None
    }

    /// Exports the agent's experience as raw-unit `(z, [cost, delay,
    /// map])` observations for warm-starting a newly spawned learner —
    /// the fleet layer's transfer-learning payload. Agents without a
    /// transferable posterior (the parametric baselines) return `None`.
    fn export_experience(&self) -> Option<Vec<(Vec<f64>, [f64; 3])>> {
        None
    }

    /// Serializes the agent's learned state at a period boundary for
    /// checkpointing. `None` when the agent does not support snapshots
    /// (the parametric baselines) — the orchestrator then omits the
    /// agent from checkpoints and a restored run re-learns cold.
    fn save_state(&self) -> Option<Vec<u8>> {
        None
    }

    /// Restores state saved by [`Agent::save_state`] onto an
    /// identically-configured fresh agent.
    ///
    /// # Errors
    /// A typed [`edgebol_ckpt::CkptError`] on malformed payloads or when
    /// the agent does not support snapshots (the default); the agent is
    /// left unchanged on error.
    fn load_state(&mut self, _bytes: &[u8]) -> Result<(), edgebol_ckpt::CkptError> {
        Err(edgebol_ckpt::CkptError::BadValue("agent does not support checkpoint restore".into()))
    }

    /// Display name.
    fn name(&self) -> &'static str;
}

/// Remembered selection so `update` can map back to a grid index.
#[derive(Debug, Clone, Copy)]
struct LastPick {
    idx: usize,
}

/// The EdgeBOL agent (and its grid-based siblings) in physical units.
pub struct EdgeBolAgent {
    spec: ProblemSpec,
    inner: EdgeBol,
    last: Option<LastPick>,
}

impl EdgeBolAgent {
    /// The paper's configuration.
    pub fn paper(spec: &ProblemSpec, seed: u64) -> Self {
        let mut cfg = EdgeBolConfig::paper(spec.constraints());
        cfg.seed = seed;
        EdgeBolAgent { spec: *spec, inner: EdgeBol::new(cfg), last: None }
    }

    /// A custom configuration (constraints are overridden from the spec).
    pub fn with_config(spec: &ProblemSpec, mut cfg: EdgeBolConfig) -> Self {
        cfg.constraints = spec.constraints();
        EdgeBolAgent { spec: *spec, inner: EdgeBol::new(cfg), last: None }
    }

    /// A fast configuration for doc tests and unit tests: no
    /// hyperparameter fitting, short warm-up, small candidate pool.
    pub fn quick_for_tests(spec: &ProblemSpec, seed: u64) -> Self {
        let mut cfg = EdgeBolConfig::paper(spec.constraints());
        cfg.seed = seed;
        cfg.fit_hyperparams = false;
        cfg.warmup_rounds = 6;
        cfg.candidate_subsample = Some(256);
        EdgeBolAgent { spec: *spec, inner: EdgeBol::new(cfg), last: None }
    }

    /// Builder-style warm start: seeds the (fresh) agent with a donor's
    /// exported experience before its first period, so it starts from
    /// the donor's posterior instead of the random warm-up box. This is
    /// the agent-level half of the fleet layer's transfer learning.
    ///
    /// ```
    /// use edgebol_core::agent::{Agent, EdgeBolAgent};
    /// use edgebol_core::problem::ProblemSpec;
    /// use edgebol_testbed::{ContextObs, PeriodObservation};
    ///
    /// let spec = ProblemSpec::new(1.0, 8.0, 0.4, 0.5);
    /// let mut donor = EdgeBolAgent::quick_for_tests(&spec, 1);
    /// let ctx = ContextObs { num_users: 1, mean_cqi: 14.0, var_cqi: 0.5 };
    /// for _ in 0..8 {
    ///     let c = donor.select(&ctx);
    ///     let obs = PeriodObservation {
    ///         delay_s: 0.3, gpu_delay_s: 0.1, map: 0.6,
    ///         server_power_w: 150.0, bs_power_w: 6.0,
    ///     };
    ///     donor.update(&ctx, &c, &obs);
    /// }
    /// let experience = donor.export_experience().expect("EdgeBOL exports");
    /// let warm = EdgeBolAgent::quick_for_tests(&spec, 2).with_experience(&experience);
    /// assert!(!warm.in_warmup(), "the donor's 8 periods cover the 6-round warm-up");
    /// ```
    ///
    /// # Panics
    /// Panics if the agent has already received feedback (see
    /// [`edgebol_bandit::EdgeBol::import_experience`]).
    pub fn with_experience(mut self, experience: &[(Vec<f64>, [f64; 3])]) -> Self {
        self.inner.import_experience(experience);
        self
    }

    /// Exact safe-set size for a context (full-grid GP sweep).
    pub fn estimated_safe_set_size(&mut self, ctx: &ContextObs) -> usize {
        self.inner.safe_set_size(&ctx.to_unit())
    }

    /// Cheap Monte-Carlo safe-set-size estimate (per-period logging).
    pub fn sampled_safe_set_size(&mut self, ctx: &ContextObs) -> usize {
        self.inner.safe_set_size_sampled(&ctx.to_unit(), 2048)
    }

    /// Whether the agent is still warming up on `S_0`.
    pub fn in_warmup(&self) -> bool {
        self.inner.in_warmup()
    }

    fn control_of(&self, idx: usize) -> ControlInput {
        let c = self.inner.grid().coords(idx);
        ControlInput::from_unit(c[0], c[1], c[2], c[3])
    }
}

impl Agent for EdgeBolAgent {
    fn select(&mut self, ctx: &ContextObs) -> ControlInput {
        let idx = self.inner.select(&ctx.to_unit());
        self.last = Some(LastPick { idx });
        self.control_of(idx)
    }

    fn update(&mut self, ctx: &ContextObs, control: &ControlInput, obs: &PeriodObservation) {
        // Prefer the remembered index (exact); fall back to re-projecting
        // the control if the caller re-ordered the loop.
        let idx = match self.last.take() {
            Some(l) => l.idx,
            None => self.inner.grid().nearest_index(&control.to_unit()),
        };
        let fb = Feedback { cost: self.spec.cost(obs), delay_s: obs.delay_s, map: obs.map };
        self.inner.update(&ctx.to_unit(), idx, &fb);
    }

    fn set_constraints(&mut self, d_max: f64, rho_min: f64) {
        self.spec.d_max = d_max;
        self.spec.rho_min = rho_min;
        self.inner.set_constraints(Constraints { d_max, rho_min });
    }

    fn safe_set_size(&mut self, ctx: &ContextObs) -> Option<usize> {
        Some(self.sampled_safe_set_size(ctx))
    }

    fn export_experience(&self) -> Option<Vec<(Vec<f64>, [f64; 3])>> {
        Some(self.inner.export_experience())
    }

    fn save_state(&self) -> Option<Vec<u8>> {
        Some(self.inner.save_state())
    }

    fn load_state(&mut self, bytes: &[u8]) -> Result<(), edgebol_ckpt::CkptError> {
        self.inner.restore_state(bytes)?;
        // The spec's constraint fields shadow the learner's; re-sync them
        // so `spec.cost` and the learner agree after a mid-run
        // `set_constraints` survived the checkpoint.
        self.spec.d_max = self.inner.constraints.d_max;
        self.spec.rho_min = self.inner.constraints.rho_min;
        self.last = None;
        Ok(())
    }

    fn name(&self) -> &'static str {
        self.inner.name()
    }
}

/// The DDPG benchmark in physical units (continuous actions).
pub struct DdpgAgent {
    spec: ProblemSpec,
    inner: Ddpg,
    last_action: Option<Vec<f64>>,
}

impl DdpgAgent {
    /// Creates the benchmark with default (tuned) hyperparameters.
    pub fn new(spec: &ProblemSpec, seed: u64) -> Self {
        let cfg = DdpgConfig { seed, ..Default::default() };
        DdpgAgent { spec: *spec, inner: Ddpg::new(cfg, spec.constraints()), last_action: None }
    }
}

impl Agent for DdpgAgent {
    fn select(&mut self, ctx: &ContextObs) -> ControlInput {
        let a = self.inner.select_action(&ctx.to_unit());
        let control = ControlInput::from_unit(a[0], a[1], a[2], a[3]);
        self.last_action = Some(a);
        control
    }

    fn update(&mut self, ctx: &ContextObs, control: &ControlInput, obs: &PeriodObservation) {
        let action = match self.last_action.take() {
            Some(a) => a,
            None => control.to_unit().to_vec(),
        };
        let fb = Feedback { cost: self.spec.cost(obs), delay_s: obs.delay_s, map: obs.map };
        self.inner.update(&ctx.to_unit(), &action, &fb);
    }

    fn set_constraints(&mut self, d_max: f64, rho_min: f64) {
        self.spec.d_max = d_max;
        self.spec.rho_min = rho_min;
        self.inner.set_constraints(Constraints { d_max, rho_min });
    }

    fn name(&self) -> &'static str {
        "DDPG"
    }
}

/// The epsilon-greedy strawman in physical units.
pub struct EpsGreedyAgent {
    spec: ProblemSpec,
    inner: EpsGreedy,
    grid: ControlGrid,
    last: Option<usize>,
}

impl EpsGreedyAgent {
    /// Creates the baseline; `penalty` defaults to a generous violation
    /// surcharge comparable to the worst cost of the problem.
    pub fn new(spec: &ProblemSpec, seed: u64) -> Self {
        let grid = ControlGrid::paper();
        let penalty = 200.0 * spec.delta1 + 8.0 * spec.delta2;
        EpsGreedyAgent {
            spec: *spec,
            inner: EpsGreedy::new(grid.clone(), spec.constraints(), penalty, seed),
            grid,
            last: None,
        }
    }
}

impl Agent for EpsGreedyAgent {
    fn select(&mut self, ctx: &ContextObs) -> ControlInput {
        let idx = self.inner.select(&ctx.to_unit());
        self.last = Some(idx);
        let c = self.grid.coords(idx);
        ControlInput::from_unit(c[0], c[1], c[2], c[3])
    }

    fn update(&mut self, ctx: &ContextObs, control: &ControlInput, obs: &PeriodObservation) {
        let idx = match self.last.take() {
            Some(i) => i,
            None => self.grid.nearest_index(&control.to_unit()),
        };
        let fb = Feedback { cost: self.spec.cost(obs), delay_s: obs.delay_s, map: obs.map };
        self.inner.update(&ctx.to_unit(), idx, &fb);
    }

    fn set_constraints(&mut self, d_max: f64, rho_min: f64) {
        self.spec.d_max = d_max;
        self.spec.rho_min = rho_min;
        // The tabular baseline has no constraint state beyond the penalty
        // rule, which reads the spec through `update`.
    }

    fn name(&self) -> &'static str {
        "eps-greedy"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edgebol_ran::Mcs;

    fn spec() -> ProblemSpec {
        ProblemSpec::new(1.0, 8.0, 0.4, 0.5)
    }

    fn ctx() -> ContextObs {
        ContextObs { num_users: 1, mean_cqi: 14.0, var_cqi: 0.5 }
    }

    #[test]
    fn edgebol_agent_warmup_controls_are_high_resource() {
        let mut a = EdgeBolAgent::quick_for_tests(&spec(), 1);
        assert!(a.in_warmup());
        let c = a.select(&ctx());
        assert!(c.resolution >= 0.8);
        assert!(c.airtime >= 0.7);
        assert!(c.mcs_cap >= Mcs(22));
    }

    #[test]
    fn edgebol_agent_select_update_cycle() {
        let mut a = EdgeBolAgent::quick_for_tests(&spec(), 2);
        for _ in 0..10 {
            let c = a.select(&ctx());
            let obs = PeriodObservation {
                delay_s: 0.3,
                gpu_delay_s: 0.1,
                map: 0.6,
                server_power_w: 150.0,
                bs_power_w: 6.0,
            };
            a.update(&ctx(), &c, &obs);
        }
        assert!(!a.in_warmup());
        // After warmup the safe-set estimate is well defined.
        assert!(a.estimated_safe_set_size(&ctx()) > 0);
    }

    #[test]
    fn update_without_select_reprojects() {
        let mut a = EdgeBolAgent::quick_for_tests(&spec(), 3);
        let c = ControlInput::max_resources();
        let obs = PeriodObservation {
            delay_s: 0.3,
            gpu_delay_s: 0.1,
            map: 0.6,
            server_power_w: 150.0,
            bs_power_w: 6.0,
        };
        // Must not panic even though select() was never called.
        a.update(&ctx(), &c, &obs);
    }

    #[test]
    fn ddpg_agent_emits_valid_controls() {
        let mut a = DdpgAgent::new(&spec(), 4);
        for _ in 0..5 {
            let c = a.select(&ctx());
            assert!(c.resolution >= 0.1 && c.resolution <= 1.0);
            assert!(c.airtime >= 0.05 && c.airtime <= 1.0);
            assert!((0.0..=1.0).contains(&c.gpu_speed));
            let obs = PeriodObservation {
                delay_s: 0.3,
                gpu_delay_s: 0.1,
                map: 0.6,
                server_power_w: 150.0,
                bs_power_w: 6.0,
            };
            a.update(&ctx(), &c, &obs);
        }
        assert_eq!(a.name(), "DDPG");
    }

    #[test]
    fn constraint_updates_propagate() {
        let mut a = EdgeBolAgent::quick_for_tests(&spec(), 5);
        a.set_constraints(0.3, 0.6);
        assert_eq!(a.spec.d_max, 0.3);
        assert_eq!(a.spec.rho_min, 0.6);
    }
}

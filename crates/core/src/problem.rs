//! The §4 problem formulation.

use edgebol_bandit::Constraints;
use edgebol_testbed::PeriodObservation;
use serde::{Deserialize, Serialize};

/// The operator-facing problem specification:
///
/// * minimize `u(c, x) = delta1 * p_s(c, x) + delta2 * p_b(c, x)` (eq. 1),
/// * subject to `d_t <= d_max` and `rho_t >= rho_min` for all `t` (eq. 2).
///
/// `delta1`/`delta2` are monetary-units-per-watt prices. The paper sweeps
/// `delta2` over `{1, 2, 4, ..., 64}` with `delta1 = 1` to model scenarios
/// from grid-powered servers to power-budgeted (e.g. solar) small cells.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProblemSpec {
    /// Price of edge-server power (mu/W).
    pub delta1: f64,
    /// Price of vBS power (mu/W).
    pub delta2: f64,
    /// Maximum service delay `d_max` (s).
    pub d_max: f64,
    /// Minimum precision `rho_min` (mAP).
    pub rho_min: f64,
}

impl ProblemSpec {
    /// Creates a specification.
    ///
    /// # Panics
    /// Panics on non-positive prices or `d_max`, or `rho_min` outside
    /// `[0, 1)`.
    pub fn new(delta1: f64, delta2: f64, d_max: f64, rho_min: f64) -> Self {
        assert!(delta1 >= 0.0 && delta2 >= 0.0, "prices must be non-negative");
        assert!(delta1 + delta2 > 0.0, "at least one price must be positive");
        assert!(d_max > 0.0, "d_max must be positive");
        assert!((0.0..1.0).contains(&rho_min), "rho_min must be in [0,1)");
        ProblemSpec { delta1, delta2, d_max, rho_min }
    }

    /// The paper's §6.2 convergence setting: `delta1 = 1`, medium
    /// constraints, parameterized by `delta2`.
    pub fn convergence(delta2: f64) -> Self {
        ProblemSpec::new(1.0, delta2, 0.4, 0.5)
    }

    /// The constraint pair as the bandit layer sees it.
    pub fn constraints(&self) -> Constraints {
        Constraints { d_max: self.d_max, rho_min: self.rho_min }
    }

    /// The cost of eq. (1) for an observation.
    pub fn cost(&self, obs: &PeriodObservation) -> f64 {
        obs.cost(self.delta1, self.delta2)
    }

    /// Whether an observation satisfies eq. (2).
    pub fn satisfied(&self, obs: &PeriodObservation) -> bool {
        self.constraints().satisfied(obs.delay_s, obs.map)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs(delay: f64, map: f64, ps: f64, pb: f64) -> PeriodObservation {
        PeriodObservation {
            delay_s: delay,
            gpu_delay_s: 0.1,
            map,
            server_power_w: ps,
            bs_power_w: pb,
        }
    }

    #[test]
    fn cost_is_eq1() {
        let spec = ProblemSpec::new(1.0, 8.0, 0.4, 0.5);
        assert_eq!(spec.cost(&obs(0.3, 0.6, 100.0, 5.0)), 140.0);
    }

    #[test]
    fn satisfaction_is_eq2() {
        let spec = ProblemSpec::new(1.0, 1.0, 0.4, 0.5);
        assert!(spec.satisfied(&obs(0.4, 0.5, 0.0, 0.0)));
        assert!(!spec.satisfied(&obs(0.41, 0.5, 0.0, 0.0)));
        assert!(!spec.satisfied(&obs(0.4, 0.49, 0.0, 0.0)));
    }

    #[test]
    fn convergence_preset_matches_paper() {
        let spec = ProblemSpec::convergence(8.0);
        assert_eq!(spec.delta1, 1.0);
        assert_eq!(spec.delta2, 8.0);
        assert_eq!(spec.d_max, 0.4);
        assert_eq!(spec.rho_min, 0.5);
    }

    #[test]
    #[should_panic(expected = "d_max must be positive")]
    fn rejects_zero_dmax() {
        let _ = ProblemSpec::new(1.0, 1.0, 0.0, 0.5);
    }
}

//! EdgeBOL — joint RAN + edge-AI energy orchestration via safe contextual
//! Bayesian online learning (reproduction of Ayala-Romero et al.,
//! CoNEXT 2021).
//!
//! This crate is the paper's contribution packaged as a library:
//!
//! * [`problem`] — the §4 formulation: the cost function of eq. (1)
//!   (`u = delta1 p_s + delta2 p_b`), the service constraints of eq. (2)
//!   and the problem specification an operator writes down.
//! * [`agent`] — [`agent::EdgeBolAgent`], the learning agent in physical
//!   units: give it a [`edgebol_testbed::ContextObs`], get a
//!   [`edgebol_testbed::ControlInput`]; feed back the period's
//!   [`edgebol_testbed::PeriodObservation`]. Baselines (DDPG, SafeOpt-like,
//!   epsilon-greedy) hide behind the same [`agent::Agent`] trait.
//! * [`orchestrator`] — the closed loop of Fig. 7: each period the
//!   orchestrator observes the context, asks the agent for a control,
//!   pushes the radio half of it through the **real O-RAN plumbing**
//!   (rApp → A1 → xApp → E2 → O-eNB agent) before applying it to the
//!   environment, and returns KPIs to the agent (BS power riding the
//!   E2-indication path like the paper's data-collector xApp).
//! * [`trace`] — per-period experiment records and summary statistics
//!   (medians, percentile bands, violation rates) used by every figure
//!   regenerator in `edgebol-bench`.
//!
//! # Quickstart
//!
//! ```
//! use edgebol_core::agent::EdgeBolAgent;
//! use edgebol_core::orchestrator::Orchestrator;
//! use edgebol_core::problem::ProblemSpec;
//! use edgebol_testbed::{Calibration, FlowTestbed, Scenario};
//!
//! // delta1 = 1, delta2 = 8, d_max = 0.4 s, rho_min = 0.5 (paper §6.2).
//! let spec = ProblemSpec::new(1.0, 8.0, 0.4, 0.5);
//! let env = FlowTestbed::new(Calibration::fast(), Scenario::single_user(35.0), 7);
//! let agent = EdgeBolAgent::quick_for_tests(&spec, 7);
//! let mut orch = Orchestrator::new(Box::new(env), Box::new(agent), spec)
//!     .expect("in-process control plane");
//! let trace = orch.try_run(20).expect("control plane stayed up");
//! assert_eq!(trace.len(), 20);
//! ```

#![deny(missing_docs)]

pub mod agent;
pub mod orchestrator;
pub mod problem;
pub mod trace;

pub use agent::{Agent, DdpgAgent, EdgeBolAgent, EpsGreedyAgent};
pub use orchestrator::{Orchestrator, OrchestratorError};
pub use problem::ProblemSpec;
pub use trace::{PeriodRecord, Trace};

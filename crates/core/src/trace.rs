//! Per-period experiment records and summaries.

use edgebol_testbed::{ContextObs, ControlInput, PeriodObservation};
use serde::{Deserialize, Serialize};

/// Everything recorded about one orchestration period.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PeriodRecord {
    /// Period index `t`.
    pub t: usize,
    /// The observed context.
    pub context: ContextObs,
    /// The control applied.
    pub control: ControlInput,
    /// The KPIs observed at the end of the period.
    pub obs: PeriodObservation,
    /// The realized cost `u_t` (eq. 1) under the spec in force.
    pub cost: f64,
    /// Whether eq. (2) was satisfied this period.
    pub satisfied: bool,
    /// Safe-set size estimate, when the agent exposes one (Fig. 13).
    pub safe_set_size: Option<usize>,
}

/// A full experiment run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    /// The per-period records in order.
    pub records: Vec<PeriodRecord>,
}

impl Trace {
    /// Number of periods.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// `true` when no periods have been recorded.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// The cost series `u_t`.
    pub fn costs(&self) -> Vec<f64> {
        self.records.iter().map(|r| r.cost).collect()
    }

    /// The delay series `d_t`.
    pub fn delays(&self) -> Vec<f64> {
        self.records.iter().map(|r| r.obs.delay_s).collect()
    }

    /// The precision series `rho_t`.
    pub fn maps(&self) -> Vec<f64> {
        self.records.iter().map(|r| r.obs.map).collect()
    }

    /// The BS power series `p^b_t`.
    pub fn bs_powers(&self) -> Vec<f64> {
        self.records.iter().map(|r| r.obs.bs_power_w).collect()
    }

    /// The server power series `p^s_t`.
    pub fn server_powers(&self) -> Vec<f64> {
        self.records.iter().map(|r| r.obs.server_power_w).collect()
    }

    /// Mean cost over the last `k` periods (converged cost).
    pub fn tail_mean_cost(&self, k: usize) -> f64 {
        let n = self.records.len();
        let k = k.min(n).max(1);
        self.records[n - k..].iter().map(|r| r.cost).sum::<f64>() / k as f64
    }

    /// Mean control over the last `k` periods, as unit coordinates
    /// `[eta, a, gamma, m]` (Fig. 11's converged policies).
    pub fn tail_mean_control(&self, k: usize) -> [f64; 4] {
        let n = self.records.len();
        let k = k.min(n).max(1);
        let mut acc = [0.0; 4];
        for r in &self.records[n - k..] {
            let u = r.control.to_unit();
            for (a, v) in acc.iter_mut().zip(u) {
                *a += v / k as f64;
            }
        }
        acc
    }

    /// Fraction of periods satisfying the constraints, skipping the first
    /// `skip` (warm-up) periods.
    pub fn satisfaction_rate(&self, skip: usize) -> f64 {
        let slice = &self.records[skip.min(self.records.len())..];
        if slice.is_empty() {
            return 1.0;
        }
        slice.iter().filter(|r| r.satisfied).count() as f64 / slice.len() as f64
    }

    /// First period index after which the cost stays within `tol`
    /// (relative) of the tail mean — a simple convergence-time estimate.
    pub fn convergence_period(&self, tol: f64) -> Option<usize> {
        if self.records.len() < 10 {
            return None;
        }
        let target = self.tail_mean_cost(10);
        let band = target.abs() * tol;
        // Walk backwards: the convergence point is the last time the cost
        // left the band.
        let mut conv = 0;
        for (i, r) in self.records.iter().enumerate() {
            if (r.cost - target).abs() > band {
                conv = i + 1;
            }
        }
        Some(conv)
    }
}

/// Pointwise median and percentile band over repetitions of a series —
/// how the paper plots its shaded figures ("median value and the 10th and
/// 90th percentiles, across 10 independent repetitions").
pub fn percentile_band(
    series: &[Vec<f64>],
    q_lo: f64,
    q_hi: f64,
) -> (Vec<f64>, Vec<f64>, Vec<f64>) {
    assert!(!series.is_empty(), "need at least one repetition");
    let len = series.iter().map(|s| s.len()).min().unwrap_or(0);
    let mut med = Vec::with_capacity(len);
    let mut lo = Vec::with_capacity(len);
    let mut hi = Vec::with_capacity(len);
    for t in 0..len {
        let column: Vec<f64> = series.iter().map(|s| s[t]).collect();
        med.push(edgebol_linalg::stats::percentile(&column, 0.5));
        lo.push(edgebol_linalg::stats::percentile(&column, q_lo));
        hi.push(edgebol_linalg::stats::percentile(&column, q_hi));
    }
    (med, lo, hi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use edgebol_testbed::ControlInput;

    fn record(t: usize, cost: f64, satisfied: bool) -> PeriodRecord {
        PeriodRecord {
            t,
            context: ContextObs { num_users: 1, mean_cqi: 12.0, var_cqi: 0.1 },
            control: ControlInput::max_resources(),
            obs: PeriodObservation {
                delay_s: 0.3,
                gpu_delay_s: 0.1,
                map: 0.6,
                server_power_w: cost,
                bs_power_w: 0.0,
            },
            cost,
            satisfied,
            safe_set_size: None,
        }
    }

    fn trace(costs: &[f64]) -> Trace {
        Trace { records: costs.iter().enumerate().map(|(t, &c)| record(t, c, true)).collect() }
    }

    #[test]
    fn series_extraction() {
        let tr = trace(&[3.0, 2.0, 1.0]);
        assert_eq!(tr.costs(), vec![3.0, 2.0, 1.0]);
        assert_eq!(tr.len(), 3);
        assert!((tr.tail_mean_cost(2) - 1.5).abs() < 1e-12);
    }

    #[test]
    fn satisfaction_rate_with_skip() {
        let mut tr = trace(&[1.0; 10]);
        for r in tr.records.iter_mut().take(5) {
            r.satisfied = false;
        }
        assert!((tr.satisfaction_rate(0) - 0.5).abs() < 1e-12);
        assert!((tr.satisfaction_rate(5) - 1.0).abs() < 1e-12);
        assert_eq!(trace(&[]).satisfaction_rate(0), 1.0);
    }

    #[test]
    fn convergence_period_detects_settling() {
        // Costs: noisy high for 20 periods, then settled at 10.
        let mut costs = vec![100.0; 20];
        costs.extend(vec![10.0; 30]);
        let tr = trace(&costs);
        let conv = tr.convergence_period(0.05).unwrap();
        assert_eq!(conv, 20);
    }

    #[test]
    fn percentile_band_pointwise() {
        let series = vec![vec![1.0, 10.0], vec![2.0, 20.0], vec![3.0, 30.0]];
        let (med, lo, hi) = percentile_band(&series, 0.0, 1.0);
        assert_eq!(med, vec![2.0, 20.0]);
        assert_eq!(lo, vec![1.0, 10.0]);
        assert_eq!(hi, vec![3.0, 30.0]);
    }

    #[test]
    fn tail_mean_control_averages_units() {
        let tr = trace(&[1.0, 1.0]);
        let u = tr.tail_mean_control(2);
        assert_eq!(u, [1.0, 1.0, 1.0, 1.0]);
    }
}

//! GPU speed policy (Policy 3) and inference-time model.

use serde::{Deserialize, Serialize};

/// Lowest configurable GPU power-management limit (W) — the RTX 2080 Ti
/// driver range the paper uses is 100–280 W.
pub const GPU_LIMIT_MIN_W: f64 = 100.0;
/// Highest configurable GPU power-management limit (W).
pub const GPU_LIMIT_MAX_W: f64 = 280.0;

/// Policy 3: the GPU-speed knob as a fraction in [0, 1] of the power-limit
/// range (0 → 100 W limit, 1 → 280 W limit).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GpuSpeedPolicy(pub f64);

impl GpuSpeedPolicy {
    /// Creates a policy, clamping into [0, 1].
    pub fn clamped(fraction: f64) -> Self {
        GpuSpeedPolicy(fraction.clamp(0.0, 1.0))
    }

    /// The configured driver power limit in watts.
    pub fn power_limit_w(self) -> f64 {
        GPU_LIMIT_MIN_W + (GPU_LIMIT_MAX_W - GPU_LIMIT_MIN_W) * self.0
    }
}

/// Inference-latency model of the detector on the policy-limited GPU.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GpuModel {
    /// Per-image inference time at 100% resolution and full speed (s).
    /// Faster R-CNN R101-FPN on a 2080 Ti runs at ≈10 fps in isolation
    /// (the paper's 150–300 ms "GPU delay" band includes server-side
    /// queueing, which the testbed models separately).
    pub t_base_full_s: f64,
    /// Relative per-image slowdown at the lowest resolution (the paper's
    /// Fig. 3-bottom effect: low-res frames are *harder* per image).
    pub lowres_penalty: f64,
    /// Effective speed at the lowest power limit, relative to full speed.
    /// Fig. 3 shows GPU delay roughly doubling from the 100% to the 10%
    /// GPU-speed policy, so this is ≈ 0.5.
    pub min_speed: f64,
}

impl Default for GpuModel {
    fn default() -> Self {
        GpuModel { t_base_full_s: 0.095, lowres_penalty: 0.35, min_speed: 0.5 }
    }
}

impl GpuModel {
    /// Effective processing speed (relative to unconstrained) under a
    /// power-limit policy: DVFS-style diminishing returns
    /// `speed = min + (1 - min) * gamma^0.5` — power scales roughly with
    /// `V^2 f`, so clawing back the last watts buys little speed.
    pub fn speed(&self, policy: GpuSpeedPolicy) -> f64 {
        let g = policy.0.clamp(0.0, 1.0);
        self.min_speed + (1.0 - self.min_speed) * g.sqrt()
    }

    /// Per-image inference time (s) at resolution fraction `res` under the
    /// given speed policy.
    ///
    /// # Panics
    /// Panics if `res` is outside `(0, 1]`.
    pub fn inference_time_s(&self, res: f64, policy: GpuSpeedPolicy) -> f64 {
        assert!(res > 0.0 && res <= 1.0, "resolution fraction must be in (0,1]");
        let per_image = self.t_base_full_s * (1.0 + self.lowres_penalty * (1.0 - res));
        per_image / self.speed(policy)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn power_limit_mapping_spans_driver_range() {
        assert_eq!(GpuSpeedPolicy(0.0).power_limit_w(), 100.0);
        assert_eq!(GpuSpeedPolicy(1.0).power_limit_w(), 280.0);
        assert_eq!(GpuSpeedPolicy(0.5).power_limit_w(), 190.0);
        assert_eq!(GpuSpeedPolicy::clamped(7.0).0, 1.0);
        assert_eq!(GpuSpeedPolicy::clamped(-1.0).0, 0.0);
    }

    #[test]
    fn speed_monotone_in_policy() {
        let g = GpuModel::default();
        let mut prev = 0.0;
        for i in 0..=10 {
            let s = g.speed(GpuSpeedPolicy(i as f64 / 10.0));
            assert!(s > prev);
            prev = s;
        }
        assert_eq!(g.speed(GpuSpeedPolicy(1.0)), 1.0);
        assert_eq!(g.speed(GpuSpeedPolicy(0.0)), g.min_speed);
    }

    #[test]
    fn diminishing_returns_near_full_power() {
        let g = GpuModel::default();
        let low_gain = g.speed(GpuSpeedPolicy(0.2)) - g.speed(GpuSpeedPolicy(0.0));
        let high_gain = g.speed(GpuSpeedPolicy(1.0)) - g.speed(GpuSpeedPolicy(0.8));
        assert!(low_gain > high_gain, "{low_gain} vs {high_gain}");
    }

    #[test]
    fn inference_time_fig3_calibration() {
        let g = GpuModel::default();
        // Full res, full speed: ~95 ms.
        let t_fast = g.inference_time_s(1.0, GpuSpeedPolicy(1.0));
        assert!((t_fast - 0.095).abs() < 1e-9);
        // Lowest speed roughly doubles it (Fig. 3 shape: 2x span).
        let t_slow = g.inference_time_s(1.0, GpuSpeedPolicy(0.0));
        assert!((1.8..=2.2).contains(&(t_slow / t_fast)), "ratio {}", t_slow / t_fast);
    }

    #[test]
    fn lowres_images_are_slower_per_image() {
        // The paper's Fig. 3-bottom observation.
        let g = GpuModel::default();
        let p = GpuSpeedPolicy(1.0);
        assert!(g.inference_time_s(0.25, p) > g.inference_time_s(1.0, p));
        let ratio = g.inference_time_s(0.25, p) / g.inference_time_s(1.0, p);
        assert!((1.15..1.45).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    #[should_panic(expected = "resolution fraction")]
    fn rejects_invalid_resolution() {
        let _ = GpuModel::default().inference_time_s(0.0, GpuSpeedPolicy(1.0));
    }
}

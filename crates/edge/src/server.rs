//! FIFO inference queue and server power model.

use crate::gpu::{GpuModel, GpuSpeedPolicy};
use serde::{Deserialize, Serialize};

/// A work-conserving FIFO queue in front of the GPU.
///
/// The queue tracks virtual time: `submit` returns the completion instant
/// of each job given arrival time and the current speed policy, and
/// accumulates GPU busy-time so a period's utilization (and hence power)
/// can be read out. This is the server-side half of the discrete-event
/// testbed.
#[derive(Debug, Clone)]
pub struct InferenceQueue {
    gpu: GpuModel,
    policy: GpuSpeedPolicy,
    /// Instant until which the GPU is busy.
    busy_until_s: f64,
    /// Accumulated busy seconds since the last reset.
    busy_acc_s: f64,
    /// Jobs completed since the last reset.
    completed: u64,
}

impl InferenceQueue {
    /// Creates an idle queue under the given model and policy.
    pub fn new(gpu: GpuModel, policy: GpuSpeedPolicy) -> Self {
        InferenceQueue { gpu, policy, busy_until_s: 0.0, busy_acc_s: 0.0, completed: 0 }
    }

    /// Updates the GPU speed policy (the driver reconfiguration point).
    /// Takes effect for subsequently submitted jobs.
    pub fn set_policy(&mut self, policy: GpuSpeedPolicy) {
        self.policy = policy;
    }

    /// Current speed policy.
    pub fn policy(&self) -> GpuSpeedPolicy {
        self.policy
    }

    /// Submits an inference job arriving at `t_arrival` (s) for a frame of
    /// resolution `res`; returns `(start, completion)` instants.
    ///
    /// # Panics
    /// Panics if `t_arrival` is negative or not finite.
    pub fn submit(&mut self, t_arrival_s: f64, res: f64) -> (f64, f64) {
        assert!(t_arrival_s >= 0.0 && t_arrival_s.is_finite(), "bad arrival time");
        let start = t_arrival_s.max(self.busy_until_s);
        let dur = self.gpu.inference_time_s(res, self.policy);
        self.busy_until_s = start + dur;
        self.busy_acc_s += dur;
        self.completed += 1;
        (start, self.busy_until_s)
    }

    /// GPU busy seconds accumulated since the last reset.
    pub fn busy_seconds(&self) -> f64 {
        self.busy_acc_s
    }

    /// Jobs completed since the last reset.
    pub fn completed(&self) -> u64 {
        self.completed
    }

    /// Utilization over an observation window of `window_s` seconds.
    ///
    /// # Panics
    /// Panics if `window_s <= 0`.
    pub fn utilization(&self, window_s: f64) -> f64 {
        assert!(window_s > 0.0, "window must be positive");
        (self.busy_acc_s / window_s).min(1.0)
    }

    /// Clears the per-period accounting (busy time, completion count) but
    /// keeps the queue state (busy-until instant).
    pub fn reset_accounting(&mut self) {
        self.busy_acc_s = 0.0;
        self.completed = 0;
    }
}

/// Server power model (Performance Indicator 3).
///
/// `P = idle + utilization * (draw_fraction * limit(gamma) - gpu_idle)`:
/// an idle platform floor (CPU package, fans, idle GPU) plus the active
/// GPU draw, which when busy sits at a fixed fraction of the configured
/// power limit (power-limited GPUs run pinned at their cap under load).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ServerPowerModel {
    /// Idle server power (W): platform + idle GPU.
    pub idle_w: f64,
    /// Fraction of the driver power limit actually drawn when busy.
    pub busy_draw_fraction: f64,
    /// Idle GPU draw already included in `idle_w` (subtracted from the
    /// active term so the busy delta is incremental).
    pub gpu_idle_w: f64,
}

impl Default for ServerPowerModel {
    fn default() -> Self {
        // Calibrated to the 75–180 W span of Figs. 2–4.
        ServerPowerModel { idle_w: 70.0, busy_draw_fraction: 0.72, gpu_idle_w: 15.0 }
    }
}

impl ServerPowerModel {
    /// Mean server power (W) over a window with the given GPU utilization
    /// and speed policy.
    ///
    /// # Panics
    /// Panics if `utilization` is outside `[0, 1]`.
    pub fn power_w(&self, utilization: f64, policy: GpuSpeedPolicy) -> f64 {
        assert!((0.0..=1.0).contains(&utilization), "utilization must be in [0,1]");
        let active = (self.busy_draw_fraction * policy.power_limit_w() - self.gpu_idle_w).max(0.0);
        self.idle_w + utilization * active
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn queue() -> InferenceQueue {
        InferenceQueue::new(GpuModel::default(), GpuSpeedPolicy(1.0))
    }

    #[test]
    fn idle_gpu_starts_immediately() {
        let mut q = queue();
        let (start, done) = q.submit(5.0, 1.0);
        assert_eq!(start, 5.0);
        assert!((done - 5.095).abs() < 1e-9);
        assert_eq!(q.completed(), 1);
    }

    #[test]
    fn back_to_back_jobs_queue_fifo() {
        let mut q = queue();
        let (_, d1) = q.submit(0.0, 1.0);
        let (s2, d2) = q.submit(0.0, 1.0);
        assert_eq!(s2, d1, "second job starts when first completes");
        assert!(d2 > d1);
    }

    #[test]
    fn idle_gaps_do_not_accrue_busy_time() {
        let mut q = queue();
        q.submit(0.0, 1.0);
        q.submit(10.0, 1.0);
        assert!((q.busy_seconds() - 0.190).abs() < 1e-9);
        assert!((q.utilization(20.0) - 0.0095).abs() < 1e-9);
    }

    #[test]
    fn slower_policy_extends_completion() {
        let mut fast = queue();
        let mut slow = InferenceQueue::new(GpuModel::default(), GpuSpeedPolicy(0.0));
        let (_, df) = fast.submit(0.0, 1.0);
        let (_, ds) = slow.submit(0.0, 1.0);
        assert!(ds > df * 1.8);
    }

    #[test]
    fn policy_change_affects_new_jobs_only() {
        let mut q = queue();
        let (_, d1) = q.submit(0.0, 1.0);
        q.set_policy(GpuSpeedPolicy(0.0));
        let (_, d2) = q.submit(0.0, 1.0);
        assert!((d1 - 0.095).abs() < 1e-9);
        assert!(d2 - d1 > 0.15, "second job runs at min speed");
    }

    #[test]
    fn reset_accounting_keeps_queue_state() {
        let mut q = queue();
        q.submit(0.0, 1.0);
        q.reset_accounting();
        assert_eq!(q.busy_seconds(), 0.0);
        assert_eq!(q.completed(), 0);
        // Queue is still busy until 0.095: next job starts there.
        let (s, _) = q.submit(0.0, 1.0);
        assert!((s - 0.095).abs() < 1e-9);
    }

    #[test]
    fn utilization_saturates_at_one() {
        let mut q = queue();
        for _ in 0..100 {
            q.submit(0.0, 1.0);
        }
        assert_eq!(q.utilization(1.0), 1.0);
    }

    #[test]
    fn power_model_calibration() {
        let p = ServerPowerModel::default();
        // Idle floor ~70 W.
        assert_eq!(p.power_w(0.0, GpuSpeedPolicy(1.0)), 70.0);
        // Busy at full limit: ~70 + (0.72*280 - 15) = ~256 W peak,
        // but at the utilizations the closed loop reaches (~0.6) it lands
        // in the paper's 170–180 W band.
        let at_06 = p.power_w(0.6, GpuSpeedPolicy(1.0));
        assert!((165.0..190.0).contains(&at_06), "{at_06}");
    }

    #[test]
    fn power_monotone_in_utilization_and_policy() {
        let p = ServerPowerModel::default();
        assert!(p.power_w(0.5, GpuSpeedPolicy(1.0)) > p.power_w(0.2, GpuSpeedPolicy(1.0)));
        assert!(p.power_w(0.5, GpuSpeedPolicy(1.0)) > p.power_w(0.5, GpuSpeedPolicy(0.0)));
    }

    #[test]
    #[should_panic(expected = "utilization must be in [0,1]")]
    fn power_rejects_bad_utilization() {
        let _ = ServerPowerModel::default().power_w(1.2, GpuSpeedPolicy(0.5));
    }
}

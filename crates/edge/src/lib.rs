//! GPU edge-server model.
//!
//! Replaces the paper's RTX 2080 Ti + Detectron2 server with a behavioural
//! model of the two things the orchestration problem sees: **inference
//! latency** and **server power** as functions of the GPU-speed policy
//! (Policy 3) and the image-resolution policy.
//!
//! * [`gpu`] — the Policy 3 knob: a GPU power-management limit (100–280 W,
//!   the RTX 2080 Ti driver range the paper configures) mapped to an
//!   effective processing speed with a DVFS-style diminishing-returns
//!   curve, and a per-image inference-time model in which *lower*
//!   resolutions are mildly slower per image (the paper's observation that
//!   "higher-res images ease the work on the GPU", Fig. 3 bottom).
//! * [`server`] — a FIFO inference queue with busy-time accounting, and
//!   the server power model: an idle platform floor plus a
//!   utilization-scaled active-GPU draw bounded by the configured power
//!   limit. Utilization effects are what produce the paper's
//!   counter-intuitive Fig. 4: higher-resolution (higher-mAP) traffic
//!   arrives more slowly in the closed loop, so it *lowers* server power.

pub mod gpu;
pub mod server;

pub use gpu::{GpuModel, GpuSpeedPolicy};
pub use server::{InferenceQueue, ServerPowerModel};

//! The offline exhaustive-search oracle.
//!
//! The paper benchmarks EdgeBOL against "an offline oracle, which we
//! obtained using a time-consuming exhaustive search procedure over the
//! whole control space" (§6.3) — "though this approach is unfeasible in
//! practice, it is a good benchmark to empirically assess the optimality
//! of EdgeBOL". Given a noiseless evaluator, [`Oracle::search`] scans the
//! full grid and returns the feasible cost minimizer.

use crate::api::Constraints;
use crate::grid::ControlGrid;

/// Result of an exhaustive search.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OracleOutcome {
    /// Index of the best control found.
    pub best_idx: usize,
    /// Its (noiseless) cost.
    pub best_cost: f64,
    /// Number of feasible controls encountered.
    pub feasible_count: usize,
    /// `false` when no control satisfied the constraints and the
    /// delay-minimizing fallback was returned instead.
    pub feasible: bool,
}

/// Exhaustive-search oracle.
pub struct Oracle;

impl Oracle {
    /// Scans the grid with a noiseless evaluator returning
    /// `(cost, delay_s, map)` per control index.
    ///
    /// If no control is feasible, returns the control with the smallest
    /// delay (the paper's `S_0` rationale) with `feasible = false`.
    pub fn search(
        grid: &ControlGrid,
        constraints: &Constraints,
        mut eval: impl FnMut(usize) -> (f64, f64, f64),
    ) -> OracleOutcome {
        let mut best: Option<(usize, f64)> = None;
        let mut fallback: Option<(usize, f64)> = None; // min delay
        let mut feasible_count = 0usize;
        for idx in 0..grid.len() {
            let (cost, delay, map) = eval(idx);
            if fallback.is_none_or(|(_, d)| delay < d) {
                fallback = Some((idx, delay));
            }
            if constraints.satisfied(delay, map) {
                feasible_count += 1;
                if best.is_none_or(|(_, c)| cost < c) {
                    best = Some((idx, cost));
                }
            }
        }
        match best {
            Some((idx, cost)) => {
                OracleOutcome { best_idx: idx, best_cost: cost, feasible_count, feasible: true }
            }
            None => {
                let (idx, _) = fallback.expect("grid is never empty");
                OracleOutcome {
                    best_idx: idx,
                    best_cost: f64::NAN,
                    feasible_count: 0,
                    feasible: false,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_eval(grid: &ControlGrid) -> impl FnMut(usize) -> (f64, f64, f64) + '_ {
        move |idx| {
            let c = grid.coords(idx);
            let level: f64 = c.iter().sum::<f64>() / c.len() as f64;
            (100.0 + 200.0 * level, 0.9 - 0.8 * level, 1.0)
        }
    }

    #[test]
    fn finds_the_boundary_optimum() {
        let grid = ControlGrid::new(11, 2);
        let constraints = Constraints { d_max: 0.5, rho_min: 0.0 };
        let out = Oracle::search(&grid, &constraints, toy_eval(&grid));
        assert!(out.feasible);
        // Feasibility requires level >= 0.5; cheapest feasible level is
        // exactly 0.5 -> cost 200.
        assert!((out.best_cost - 200.0).abs() < 1e-9, "{}", out.best_cost);
        let lvl: f64 = grid.coords(out.best_idx).iter().sum::<f64>() / 2.0;
        assert!((lvl - 0.5).abs() < 1e-9);
    }

    #[test]
    fn counts_feasible_controls() {
        let grid = ControlGrid::new(3, 1); // levels 0, 0.5, 1
        let constraints = Constraints { d_max: 0.5, rho_min: 0.0 };
        let out = Oracle::search(&grid, &constraints, toy_eval(&grid));
        // level >= 0.5 -> 2 of 3 feasible.
        assert_eq!(out.feasible_count, 2);
    }

    #[test]
    fn infeasible_problem_falls_back_to_min_delay() {
        let grid = ControlGrid::new(5, 2);
        let constraints = Constraints { d_max: 0.01, rho_min: 0.0 }; // impossible
        let out = Oracle::search(&grid, &constraints, toy_eval(&grid));
        assert!(!out.feasible);
        assert_eq!(out.feasible_count, 0);
        assert!(out.best_cost.is_nan());
        // Fallback is the min-delay (max resources) corner.
        assert_eq!(out.best_idx, grid.max_corner());
    }
}

//! Agent-facing types shared across algorithms.

/// The per-period service constraints of eq. (2).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Constraints {
    /// Maximum tolerable service delay `d_max` (seconds).
    pub d_max: f64,
    /// Minimum tolerable precision `rho_min` (mAP).
    pub rho_min: f64,
}

impl Constraints {
    /// The paper's "medium" setting (§6.2): `d_max = 0.4 s`,
    /// `rho_min = 0.5`.
    pub fn medium() -> Self {
        Constraints { d_max: 0.4, rho_min: 0.5 }
    }

    /// Whether an observation satisfies both constraints.
    pub fn satisfied(&self, delay_s: f64, map: f64) -> bool {
        delay_s <= self.d_max && map >= self.rho_min
    }
}

/// End-of-period feedback to an agent: the cost of eq. (1) plus the two
/// constrained KPIs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Feedback {
    /// Realized cost `u_t = delta1 p_s + delta2 p_b`.
    pub cost: f64,
    /// Realized service delay (s).
    pub delay_s: f64,
    /// Realized precision (mAP).
    pub map: f64,
}

/// A contextual agent over a discrete control grid.
///
/// `select` receives the normalized context vector and returns a flat
/// index into the [`crate::ControlGrid`]; `update` delivers the feedback
/// for the pair at the end of the period.
pub trait GridAgent {
    /// Chooses a control for the observed context.
    fn select(&mut self, context: &[f64]) -> usize;

    /// Records the period's outcome.
    fn update(&mut self, context: &[f64], control_idx: usize, feedback: &Feedback);

    /// A short display name for experiment logs.
    fn name(&self) -> &'static str;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constraint_satisfaction() {
        let c = Constraints::medium();
        assert!(c.satisfied(0.39, 0.51));
        assert!(!c.satisfied(0.41, 0.51));
        assert!(!c.satisfied(0.39, 0.49));
        assert!(c.satisfied(0.4, 0.5), "boundaries are inclusive");
    }
}

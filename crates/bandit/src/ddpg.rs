//! The DDPG benchmark of §6.5.
//!
//! The paper adapts vrAIn's deep deterministic policy gradient to the
//! contextual-bandit setting: the critic "instead of approximating the Q
//! function … learns a new cost function referred to as DDPG cost", which
//! "takes the value of (1) when all the constraints in (2) are satisfied,
//! and the maximum cost value otherwise"; the actor gets "a sigmoid
//! function for the actor's output" so actions land in the unit box.
//!
//! Because the problem is a contextual bandit (no state transitions), the
//! critic is trained by plain regression on the observed DDPG cost — no
//! bootstrapping and hence no target networks. The actor follows the
//! deterministic policy gradient `∇_θ J = ∇_a Q(s, a)|_{a=π(s)} ∇_θ π(s)`
//! computed exactly by `edgebol-nn`'s input gradients.

use crate::api::{Constraints, Feedback};
use edgebol_nn::{Activation, Adam, Mlp, ReplayBuffer};
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// One stored interaction.
#[derive(Debug, Clone)]
struct Transition {
    ctx: Vec<f64>,
    action: Vec<f64>,
    ddpg_cost: f64,
}

/// DDPG hyperparameters (tuned the way §6.5 describes: "optimized all the
/// hyper-parameters (such as the decay) to minimize convergence time").
#[derive(Debug, Clone)]
pub struct DdpgConfig {
    /// Hidden widths of both networks.
    pub hidden: [usize; 2],
    /// Actor learning rate.
    pub actor_lr: f64,
    /// Critic learning rate.
    pub critic_lr: f64,
    /// Minibatch size.
    pub batch: usize,
    /// Replay capacity.
    pub replay: usize,
    /// Initial exploration noise std (action units).
    pub noise_std0: f64,
    /// Multiplicative per-step noise decay.
    pub noise_decay: f64,
    /// Exploration noise floor.
    pub noise_min: f64,
    /// Gradient updates per environment step.
    pub updates_per_step: usize,
    /// Context dimensionality.
    pub context_dims: usize,
    /// Action dimensionality.
    pub action_dims: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for DdpgConfig {
    fn default() -> Self {
        DdpgConfig {
            hidden: [64, 64],
            actor_lr: 2e-3,
            critic_lr: 4e-3,
            batch: 64,
            replay: 20_000,
            noise_std0: 0.35,
            noise_decay: 0.9985,
            noise_min: 0.03,
            updates_per_step: 2,
            context_dims: 3,
            action_dims: 4,
            seed: 0xDD96,
        }
    }
}

/// The DDPG agent. Selects *continuous* actions in `[0,1]^4`.
pub struct Ddpg {
    cfg: DdpgConfig,
    constraints: Constraints,
    actor: Mlp,
    critic: Mlp,
    opt_actor: Adam,
    opt_critic: Adam,
    replay: ReplayBuffer<Transition>,
    noise_std: f64,
    /// Running maximum observed cost: the "maximum cost value" charged on
    /// violations.
    max_cost_seen: f64,
    /// Running mean/std of the DDPG cost for critic target normalization.
    cost_mean: f64,
    cost_m2: f64,
    cost_n: u64,
    rng: SmallRng,
}

impl Ddpg {
    /// Creates the agent.
    pub fn new(cfg: DdpgConfig, constraints: Constraints) -> Self {
        let mut rng = SmallRng::seed_from_u64(cfg.seed);
        let actor = Mlp::new(
            &[cfg.context_dims, cfg.hidden[0], cfg.hidden[1], cfg.action_dims],
            Activation::Relu,
            Activation::Sigmoid,
            &mut rng,
        );
        let critic = Mlp::new(
            &[cfg.context_dims + cfg.action_dims, cfg.hidden[0], cfg.hidden[1], 1],
            Activation::Relu,
            Activation::Identity,
            &mut rng,
        );
        let opt_actor = Adam::new(actor.param_count(), cfg.actor_lr);
        let opt_critic = Adam::new(critic.param_count(), cfg.critic_lr);
        let replay = ReplayBuffer::new(cfg.replay);
        let noise_std = cfg.noise_std0;
        Ddpg {
            cfg,
            constraints,
            actor,
            critic,
            opt_actor,
            opt_critic,
            replay,
            noise_std,
            max_cost_seen: 1.0,
            cost_mean: 0.0,
            cost_m2: 0.0,
            cost_n: 0,
            rng,
        }
    }

    /// Updates the constraint setting (the Fig. 14 change events). Unlike
    /// EdgeBOL's non-parametric safe set, the parametric critic has to
    /// re-learn the penalized landscape — the effect Fig. 14 demonstrates.
    pub fn set_constraints(&mut self, constraints: Constraints) {
        self.constraints = constraints;
    }

    /// Current exploration noise std.
    pub fn noise_std(&self) -> f64 {
        self.noise_std
    }

    /// Selects an action for the context: actor output plus clamped
    /// Gaussian exploration noise.
    pub fn select_action(&mut self, context: &[f64]) -> Vec<f64> {
        assert_eq!(context.len(), self.cfg.context_dims, "context dimensionality");
        let mut a = self.actor.forward(context);
        for v in &mut a {
            *v = (*v + edgebol_linalg::stats::normal(&mut self.rng, 0.0, self.noise_std))
                .clamp(0.0, 1.0);
        }
        a
    }

    /// Greedy (noise-free) action, for evaluation.
    pub fn greedy_action(&self, context: &[f64]) -> Vec<f64> {
        self.actor.forward(context)
    }

    /// The DDPG cost of an outcome: eq. (1) when feasible, the maximum
    /// cost value otherwise.
    fn ddpg_cost(&mut self, fb: &Feedback) -> f64 {
        self.max_cost_seen = self.max_cost_seen.max(fb.cost);
        if self.constraints.satisfied(fb.delay_s, fb.map) {
            fb.cost
        } else {
            self.max_cost_seen
        }
    }

    /// Normalizes a cost with the running statistics.
    fn norm_cost(&self, c: f64) -> f64 {
        let std = if self.cost_n > 1 {
            (self.cost_m2 / self.cost_n as f64).sqrt().max(1e-6)
        } else {
            1.0
        };
        (c - self.cost_mean) / std
    }

    /// Records the outcome and performs gradient updates.
    pub fn update(&mut self, context: &[f64], action: &[f64], feedback: &Feedback) {
        let c = self.ddpg_cost(feedback);
        // Welford update of the cost statistics.
        self.cost_n += 1;
        let delta = c - self.cost_mean;
        self.cost_mean += delta / self.cost_n as f64;
        self.cost_m2 += delta * (c - self.cost_mean);

        self.replay.push(Transition {
            ctx: context.to_vec(),
            action: action.to_vec(),
            ddpg_cost: c,
        });
        self.noise_std = (self.noise_std * self.cfg.noise_decay).max(self.cfg.noise_min);

        if self.replay.len() < self.cfg.batch {
            return;
        }
        for _ in 0..self.cfg.updates_per_step {
            self.train_step();
        }
    }

    /// One critic regression + actor policy-gradient step on a minibatch.
    fn train_step(&mut self) {
        let batch = self.replay.sample(&mut self.rng, self.cfg.batch);
        let b = batch.len() as f64;

        // Critic: MSE to the normalized DDPG cost.
        let mut critic_grads = vec![0.0; self.critic.param_count()];
        for tr in &batch {
            let mut input = tr.ctx.clone();
            input.extend_from_slice(&tr.action);
            let (out, cache) = self.critic.forward_train(&input);
            let err = out[0] - self.norm_cost(tr.ddpg_cost);
            let (g, _) = self.critic.backward(&cache, &[2.0 * err / b]);
            for (acc, gv) in critic_grads.iter_mut().zip(&g) {
                *acc += gv;
            }
        }
        self.opt_critic.step(self.critic.params_mut(), &critic_grads);

        // Actor: descend d Q / d theta = dQ/da * da/dtheta (minimize cost).
        let mut actor_grads = vec![0.0; self.actor.param_count()];
        for tr in &batch {
            let (a, a_cache) = self.actor.forward_train(&tr.ctx);
            let mut input = tr.ctx.clone();
            input.extend_from_slice(&a);
            let (_, c_cache) = self.critic.forward_train(&input);
            let (_, dinput) = self.critic.backward(&c_cache, &[1.0 / b]);
            let da = &dinput[self.cfg.context_dims..];
            let (g, _) = self.actor.backward(&a_cache, da);
            for (acc, gv) in actor_grads.iter_mut().zip(&g) {
                *acc += gv;
            }
        }
        self.opt_actor.step(self.actor.params_mut(), &actor_grads);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Quadratic toy: cost minimized at action (0.3, 0.7, ...), always
    /// feasible. DDPG should steer its greedy action toward the optimum.
    #[test]
    fn learns_a_static_optimum() {
        let cfg = DdpgConfig { context_dims: 2, action_dims: 2, ..Default::default() };
        let constraints = Constraints { d_max: 1e9, rho_min: -1.0 };
        let mut agent = Ddpg::new(cfg, constraints);
        let ctx = [0.5, 0.5];
        let target = [0.3, 0.7];
        for _ in 0..800 {
            let a = agent.select_action(&ctx);
            let cost: f64 =
                a.iter().zip(&target).map(|(ai, ti)| (ai - ti) * (ai - ti)).sum::<f64>() * 100.0;
            agent.update(&ctx, &a, &Feedback { cost, delay_s: 0.0, map: 1.0 });
        }
        let greedy = agent.greedy_action(&ctx);
        let err: f64 = greedy.iter().zip(&target).map(|(a, t)| (a - t).abs()).fold(0.0, f64::max);
        assert!(err < 0.15, "greedy {greedy:?} vs target {target:?}");
    }

    #[test]
    fn violations_are_charged_the_max_cost() {
        let mut agent = Ddpg::new(DdpgConfig::default(), Constraints { d_max: 0.4, rho_min: 0.5 });
        // Establish a max cost.
        let ok = Feedback { cost: 250.0, delay_s: 0.3, map: 0.6 };
        assert_eq!(agent.ddpg_cost(&ok), 250.0);
        // A cheap but violating outcome is charged the running max.
        let bad = Feedback { cost: 50.0, delay_s: 0.9, map: 0.6 };
        assert_eq!(agent.ddpg_cost(&bad), 250.0);
        // A new, higher feasible cost raises the ceiling.
        let pricey = Feedback { cost: 400.0, delay_s: 0.3, map: 0.6 };
        assert_eq!(agent.ddpg_cost(&pricey), 400.0);
        assert_eq!(agent.ddpg_cost(&bad), 400.0);
    }

    #[test]
    fn actions_live_in_the_unit_box() {
        let mut agent = Ddpg::new(DdpgConfig::default(), Constraints { d_max: 0.4, rho_min: 0.5 });
        for i in 0..50 {
            let ctx = [i as f64 / 50.0, 0.5, 0.2];
            let a = agent.select_action(&ctx);
            assert_eq!(a.len(), 4);
            assert!(a.iter().all(|v| (0.0..=1.0).contains(v)), "{a:?}");
        }
    }

    #[test]
    fn noise_decays_with_updates() {
        let mut agent = Ddpg::new(DdpgConfig::default(), Constraints { d_max: 0.4, rho_min: 0.5 });
        let s0 = agent.noise_std();
        let ctx = [0.1, 0.2, 0.3];
        for _ in 0..200 {
            let a = agent.select_action(&ctx);
            agent.update(&ctx, &a, &Feedback { cost: 100.0, delay_s: 0.3, map: 0.6 });
        }
        assert!(agent.noise_std() < s0);
        assert!(agent.noise_std() >= DdpgConfig::default().noise_min);
    }

    #[test]
    fn adapts_to_context() {
        // Optimal action tracks the context's first coordinate.
        let cfg = DdpgConfig { context_dims: 1, action_dims: 1, ..Default::default() };
        let mut agent = Ddpg::new(cfg, Constraints { d_max: 1e9, rho_min: -1.0 });
        let mut rng = SmallRng::seed_from_u64(5);
        use rand::RngExt;
        for _ in 0..2500 {
            let ctx = [rng.random::<f64>()];
            let a = agent.select_action(&ctx);
            let cost = (a[0] - ctx[0]).powi(2) * 100.0;
            agent.update(&ctx, &a, &Feedback { cost, delay_s: 0.0, map: 1.0 });
        }
        let lo = agent.greedy_action(&[0.2])[0];
        let hi = agent.greedy_action(&[0.8])[0];
        assert!(hi - lo > 0.3, "policy must track the context: pi(0.2)={lo:.2}, pi(0.8)={hi:.2}");
    }
}

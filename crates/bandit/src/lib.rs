//! Contextual-bandit framework: EdgeBOL and its benchmarks.
//!
//! This crate contains the paper's algorithmic contribution and every
//! baseline it is compared against, over an abstract interface so the same
//! agents drive the flow-level testbed, the DES, or any other environment:
//!
//! * [`EdgeBol`] — Algorithm 1: three Gaussian processes (cost, delay,
//!   mAP) over the joint context–control space, a GP-estimated **safe set**
//!   (eq. 8) seeded by an always-feasible `S_0`, and the **constrained
//!   lower-confidence-bound** acquisition (eq. 9). Includes the practical
//!   machinery the paper alludes to: a warm-up phase on `S_0` that doubles
//!   as the "prior data" for one-shot hyperparameter fitting (then frozen),
//!   target standardization, candidate subsampling and a sliding
//!   observation window for very long runs.
//! * [`SafeOptLike`] — the SafeOpt-style baseline (§5 "Acquisition
//!   function"): same safe set, but an uncertainty-maximizing acquisition
//!   that explicitly expands the safe set; the paper reports (and Fig.-9
//!   style runs here confirm) slower cost convergence.
//! * [`EpsGreedy`] — a contextless tabular ε-greedy control, the classic
//!   bandit strawman.
//! * [`Oracle`] — offline exhaustive search over the control grid against
//!   a noiseless evaluator: the dashed "optimal" lines of Figs. 10 and 12.
//! * [`Ddpg`] — the neural benchmark of §6.5: an actor–critic DDPG
//!   adapted to the contextual-bandit setting, with the "DDPG cost" trick
//!   (constraint violations are charged the maximum cost) and a sigmoid
//!   actor head, built on `edgebol-nn`.
//!
//! Contexts and controls are normalized to unit hypercubes (`[0,1]^3` and
//! `[0,1]^4`); the mapping to physical policies lives in
//! `edgebol-testbed::ControlInput`.

pub mod api;
pub mod ddpg;
pub mod edgebol;
pub mod epsgreedy;
pub mod grid;
pub mod oracle;
pub mod safeopt;

pub use api::{Constraints, Feedback, GridAgent};
pub use ddpg::{Ddpg, DdpgConfig};
pub use edgebol::{Acquisition, EdgeBol, EdgeBolConfig};
pub use epsgreedy::EpsGreedy;
pub use grid::ControlGrid;
pub use oracle::{Oracle, OracleOutcome};
pub use safeopt::SafeOptLike;

//! EdgeBOL — Algorithm 1 of the paper.
//!
//! Three GPs model cost, delay and mAP over `z = (context, control)`.
//! Each period: estimate the safe set from the constraint GPs (eq. 8,
//! always unioned with the a-priori safe `S_0`), then pick the safe
//! control minimizing the cost LCB (eq. 9). Feedback updates all three
//! GPs.
//!
//! Practical machinery (all discussed in §5 "Practical Issues" or §4.4,
//! made concrete here):
//!
//! * **Warm-up on `S_0`.** The paper fits kernel hyperparameters "over
//!   prior data" and freezes them. We gather that prior data online: the
//!   first `warmup_rounds` periods draw random controls from `S_0` (the
//!   max-resource corner box — feasible whenever the problem is), then
//!   per-target standardization is frozen, hyperparameters optionally
//!   fitted by marginal likelihood, and the GPs are (re)built.
//! * **Candidate subsampling.** Evaluating the posterior on all
//!   `|X| = 14 641` controls every period is `O(|X| T^2)`; a random
//!   subsample plus `S_0` plus recently-selected "elite" controls keeps
//!   the cost bounded with no measurable loss on this problem (ablation
//!   bench `ablation_window`).
//! * **Sliding window.** For multi-thousand-period runs (Fig. 14) the GP
//!   keeps the most recent `max_observations` points.

use crate::api::{Constraints, Feedback, GridAgent};
use crate::grid::ControlGrid;
use edgebol_ckpt::{CkptError, Dec, Enc};
use edgebol_gp::{
    nelder_mead, EvictStrategy, GaussianProcess, Kernel, KernelKind, NelderMeadOptions,
};
use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};

/// Which acquisition rule to run on top of the shared GP/safe-set
/// machinery. EdgeBOL proper uses [`Acquisition::ConstrainedLcb`]; the
/// other variants exist for the baselines and ablations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Acquisition {
    /// eq. (9): `argmin_{x in S_t} mu_0 - beta^{1/2} sigma_0`.
    ConstrainedLcb,
    /// SafeOpt-style: pick the safe control with the largest posterior
    /// uncertainty across the constraint functions (explicit safe-set
    /// expansion; converges slowly on cost).
    MaxUncertainty,
    /// LCB over *all* candidates, ignoring the safe set (ablation:
    /// quantifies how many violations safety filtering prevents).
    UnconstrainedLcb,
    /// Thompson sampling within the safe set: draw one cost realization
    /// per candidate from the posterior marginals and pick the cheapest.
    /// An extension beyond the paper; randomized exploration is sometimes
    /// less prone to LCB's boundary-hugging.
    ThompsonSampling,
}

/// Configuration of [`EdgeBol`].
#[derive(Debug, Clone)]
pub struct EdgeBolConfig {
    /// The `beta^{1/2}` confidence multiplier (paper: 2.5). Used for both
    /// the safe-set width (eq. 8) and the acquisition bonus (eq. 9) — the
    /// reading of the paper's shared beta consistent with [8, 20].
    pub beta_sqrt: f64,
    /// The service constraints in force.
    pub constraints: Constraints,
    /// Warm-up periods drawing random controls from the high-resource
    /// corner box (the "prior data" for scaling + hyperparameters).
    pub warmup_rounds: usize,
    /// Unit threshold of the warm-up sampling box (0.8 → 81 controls on
    /// the paper grid). Note the *fallback* safe set `S_0` is stricter:
    /// only the max-resources corner, the one control that is
    /// delay-minimal and mAP-maximal by construction — warm-up points
    /// inside the box may violate tight constraints, which is acceptable
    /// for a pre-production phase (§4.2) but not as a perpetual fallback.
    pub s0_threshold: f64,
    /// Fit kernel hyperparameters at the end of warm-up (paper's
    /// procedure); disable for exact determinism across runs.
    pub fit_hyperparams: bool,
    /// Sliding-window cap on retained observations (None = keep all).
    pub max_observations: Option<usize>,
    /// Window-eviction strategy override. `None` defers to the
    /// `EDGEBOL_GP_EVICT` environment knob (default: the `O(W^2)`
    /// delete-row downdate); the equivalence tests pin both strategies
    /// explicitly to compare them in one process.
    pub gp_evict: Option<EvictStrategy>,
    /// Candidate subsample size per period (None = full grid).
    pub candidate_subsample: Option<usize>,
    /// Acquisition rule (EdgeBOL: `ConstrainedLcb`).
    pub acquisition: Acquisition,
    /// Matérn-3/2 length-scale used per dimension before/without
    /// hyperparameter fitting (unit-space).
    pub default_lengthscale: f64,
    /// Observation-noise variance of the standardized targets.
    pub noise_var: f64,
    /// Floor on the kernel signal variance in standardized-target units.
    /// Warm-up data comes from the tight `S_0` corner, so its variance
    /// badly underestimates the functions' range over the whole control
    /// space; a small prior variance would make *unexplored* regions look
    /// confidently safe (the opposite of eq. (8)'s intent). A floor of
    /// several standardized variances keeps unexplored regions
    /// conservative until actually observed.
    pub min_prior_var: f64,
    /// RNG seed (subsampling, warm-up draws).
    pub seed: u64,
    /// Context dimensionality (the paper's aggregated context: 3).
    pub context_dims: usize,
}

impl EdgeBolConfig {
    /// The paper's configuration for a given constraint set.
    pub fn paper(constraints: Constraints) -> Self {
        EdgeBolConfig {
            beta_sqrt: 2.5,
            constraints,
            warmup_rounds: 12,
            s0_threshold: 0.8,
            fit_hyperparams: true,
            max_observations: Some(800),
            gp_evict: None,
            candidate_subsample: Some(2048),
            acquisition: Acquisition::ConstrainedLcb,
            default_lengthscale: 0.4,
            noise_var: 0.02,
            min_prior_var: 4.0,
            seed: 0xEB01,
            context_dims: 3,
        }
    }
}

/// Per-target affine standardization frozen at the end of warm-up.
#[derive(Debug, Clone, Copy)]
struct Scale {
    mean: f64,
    std: f64,
}

impl Scale {
    fn to_scaled(self, raw: f64) -> f64 {
        (raw - self.mean) / self.std
    }

    fn mean_from_scaled(&self, scaled: f64) -> f64 {
        scaled * self.std + self.mean
    }

    fn std_from_scaled(&self, scaled_std: f64) -> f64 {
        scaled_std * self.std
    }
}

/// The EdgeBOL agent.
pub struct EdgeBol {
    cfg: EdgeBolConfig,
    grid: ControlGrid,
    /// GPs for cost (0), delay (1), mAP (2); built at the end of warm-up.
    gps: Option<[GaussianProcess; 3]>,
    scales: Option<[Scale; 3]>,
    /// Raw warm-up data: `(z, [cost, delay, map])`.
    warmup_data: Vec<(Vec<f64>, [f64; 3])>,
    /// The a-priori safe set: the max-resources corner.
    s0: Vec<usize>,
    /// Warm-up sampling box (high-resource controls around `S_0`).
    warmup_box: Vec<usize>,
    /// Per-function observation-noise std in raw units, frozen at the end
    /// of warm-up. The safe set backs off by `beta * noise_std` so the
    /// *realized noisy* constraints of eq. (2) hold with high probability,
    /// not just the latent means.
    noise_std_raw: [f64; 3],
    /// Raw-unit mirror of the GP window targets, kept in the same order
    /// (and under the same eviction) as the shared GP point sequence.
    /// Checkpoints serialize *these* values: re-standardizing them on
    /// restore reproduces the live GP targets bit-exactly, whereas
    /// de-standardizing the scaled window would round-trip through two
    /// f64 affine maps and drift.
    raw_ys: Vec<[f64; 3]>,
    /// Recently selected controls kept in every candidate set.
    elites: Vec<usize>,
    /// Reused flat candidate-matrix buffer for the batched posterior
    /// (avoids one `|cand| * dims` allocation per function per period).
    z_scratch: Vec<f64>,
    rng: SmallRng,
    /// Updates received so far.
    t: usize,
    /// Constraints can change at runtime (Fig. 14); the GPs carry over.
    pub constraints: Constraints,
}

impl EdgeBol {
    /// Creates the agent over the paper's 11^4 control grid.
    pub fn new(cfg: EdgeBolConfig) -> Self {
        Self::with_grid(cfg, ControlGrid::paper())
    }

    /// Creates the agent over a custom grid (used by tests and ablations).
    pub fn with_grid(cfg: EdgeBolConfig, grid: ControlGrid) -> Self {
        let warmup_box = grid.corner_box(cfg.s0_threshold);
        assert!(!warmup_box.is_empty(), "warm-up box must not be empty");
        let s0 = vec![grid.max_corner()];
        let rng = SmallRng::seed_from_u64(cfg.seed);
        let constraints = cfg.constraints;
        EdgeBol {
            cfg,
            grid,
            gps: None,
            scales: None,
            warmup_data: Vec::new(),
            s0,
            warmup_box,
            raw_ys: Vec::new(),
            elites: Vec::new(),
            z_scratch: Vec::new(),
            rng,
            t: 0,
            constraints,
            noise_std_raw: [0.0; 3],
        }
    }

    /// The control grid.
    pub fn grid(&self) -> &ControlGrid {
        &self.grid
    }

    /// Updates the constraint setting at runtime (the Fig. 14 scenario).
    /// The learned GPs are retained — this is the non-parametric
    /// advantage the paper demonstrates against DDPG.
    pub fn set_constraints(&mut self, constraints: Constraints) {
        self.constraints = constraints;
    }

    /// Whether the agent is still in its warm-up phase.
    pub fn in_warmup(&self) -> bool {
        self.gps.is_none()
    }

    /// Exports the agent's experience as raw-unit observations
    /// `(z, [cost, delay, map])`, oldest first — the transfer payload for
    /// warm-starting a newly spawned learner (fleet layer).
    ///
    /// During warm-up this is the accumulated warm-up data; after the GPs
    /// are built it is reconstructed from the retained GP windows by
    /// unstandardizing each target with the frozen per-target `Scale`
    /// (the three GPs share identical inputs, so the cost GP's window
    /// defines the point set).
    pub fn export_experience(&self) -> Vec<(Vec<f64>, [f64; 3])> {
        match (&self.gps, self.scales) {
            (Some(gps), Some(scales)) => {
                let dims = self.cfg.context_dims + self.grid.dims();
                let (xs, _) = gps[0].data();
                let n = xs.len() / dims;
                let mut out = Vec::with_capacity(n);
                for i in 0..n {
                    let z = xs[i * dims..(i + 1) * dims].to_vec();
                    let mut y = [0.0; 3];
                    for k in 0..3 {
                        let (_, ys) = gps[k].data();
                        y[k] = scales[k].mean_from_scaled(ys[i]);
                    }
                    out.push((z, y));
                }
                out
            }
            _ => self.warmup_data.clone(),
        }
    }

    /// Seeds a fresh agent with a donor's experience (see
    /// [`Self::export_experience`]) before its first period.
    ///
    /// The imported points become this agent's prior data: scaling and
    /// (optionally) hyperparameters are fitted on them and the GPs are
    /// built immediately when the donor contributed at least
    /// `warmup_rounds` observations — the agent then **skips the random
    /// warm-up phase entirely**, which is the convergence saving the
    /// fleet layer measures. With fewer points the import only shortens
    /// the remaining warm-up.
    ///
    /// # Panics
    /// Panics if the agent has already received feedback (warm-starting
    /// is a spawn-time operation), or if any imported point has the wrong
    /// dimensionality.
    pub fn import_experience(&mut self, experience: &[(Vec<f64>, [f64; 3])]) {
        assert!(
            self.t == 0 && self.in_warmup(),
            "import_experience is only valid on a fresh agent"
        );
        let dims = self.cfg.context_dims + self.grid.dims();
        for (z, _) in experience {
            assert_eq!(z.len(), dims, "imported experience dimensionality");
        }
        self.warmup_data.extend_from_slice(experience);
        if self.warmup_data.len() >= self.cfg.warmup_rounds {
            self.build_gps();
        }
    }

    /// Number of feedback updates received.
    pub fn updates(&self) -> usize {
        self.t
    }

    /// Builds the candidate index set for one selection round.
    fn candidates(&mut self) -> Vec<usize> {
        let mut cand: Vec<usize> = match self.cfg.candidate_subsample {
            None => (0..self.grid.len()).collect(),
            Some(k) => {
                let mut v: Vec<usize> =
                    (0..k).map(|_| self.rng.random_range(0..self.grid.len())).collect();
                v.extend_from_slice(&self.s0);
                v.extend_from_slice(&self.elites);
                // The expansion frontier: one-step neighbours of recent
                // picks. Safe-set growth is local (eq. 8 admits points only
                // once nearby observations shrink the posterior), so these
                // candidates are where expansion actually happens.
                for &e in self.elites.iter().rev().take(16) {
                    v.extend(self.grid.neighbors(e));
                }
                v
            }
        };
        cand.sort_unstable();
        cand.dedup();
        cand
    }

    /// Posterior over the candidates for all three functions, in raw
    /// (unstandardized) units. Returns `(means, stds)` per function.
    fn posterior(&mut self, context: &[f64], cand: &[usize]) -> [(Vec<f64>, Vec<f64>); 3] {
        let dims = self.cfg.context_dims + self.grid.dims();
        self.z_scratch.clear();
        self.z_scratch.reserve(cand.len() * dims);
        for &idx in cand {
            self.grid.write_z(context, idx, &mut self.z_scratch);
        }
        let flat = &self.z_scratch;
        let scales = self.scales.expect("posterior requires built GPs");
        let gps = self.gps.as_mut().expect("posterior requires built GPs");
        let mut out: [(Vec<f64>, Vec<f64>); 3] =
            [(Vec::new(), Vec::new()), (Vec::new(), Vec::new()), (Vec::new(), Vec::new())];
        for (i, gp) in gps.iter_mut().enumerate() {
            let (m, s) = gp.predict_batch(flat);
            let scale = scales[i];
            out[i] = (
                m.into_iter().map(|v| scale.mean_from_scaled(v)).collect(),
                s.into_iter().map(|v| scale.std_from_scaled(v)).collect(),
            );
        }
        out
    }

    /// The safe mask over candidates (eq. 8), before the `S_0` union.
    ///
    /// The confidence width combines the GP's epistemic uncertainty with
    /// the (frozen) observation-noise std: eq. (2) constrains the *noisy
    /// realizations* `d_t`, `rho_t`, so a control whose latent mean hugs
    /// the boundary would still violate ~half the periods.
    fn safe_mask(&self, delay: &(Vec<f64>, Vec<f64>), map: &(Vec<f64>, Vec<f64>)) -> Vec<bool> {
        let b = self.cfg.beta_sqrt;
        let c = self.constraints;
        // Observation-noise backoff at a ~90% one-sided quantile: the
        // realized KPIs, not just the latent means, must satisfy eq. (2)
        // "with very high probability" (§6.2) — but a full beta-width
        // noise backoff would freeze safe-set expansion entirely.
        let zd = 1.3 * self.noise_std_raw[1];
        let zm = 1.3 * self.noise_std_raw[2];
        (0..delay.0.len())
            .map(|j| {
                delay.0[j] + b * delay.1[j] + zd <= c.d_max
                    && map.0[j] - b * map.1[j] - zm >= c.rho_min
            })
            .collect()
    }

    /// Estimated safe-set size over the *full* grid for the given context
    /// (the Fig. 13 plot). Falls back to `|S_0|` during warm-up.
    pub fn safe_set_size(&mut self, context: &[f64]) -> usize {
        if self.in_warmup() {
            return self.s0.len();
        }
        let cand: Vec<usize> = (0..self.grid.len()).collect();
        let [_, delay, map] = self.posterior(context, &cand);
        let mask = self.safe_mask(&delay, &map);
        let mut safe: Vec<usize> =
            cand.iter().zip(&mask).filter(|(_, &m)| m).map(|(&i, _)| i).collect();
        safe.extend_from_slice(&self.s0);
        safe.sort_unstable();
        safe.dedup();
        safe.len()
    }

    /// Debug introspection: posterior `(cost mu, cost sd, delay mu,
    /// delay sd)` in raw units at one control.
    pub fn debug_posterior(&mut self, context: &[f64], idx: usize) -> (f64, f64, f64, f64) {
        let [cost, delay, _] = self.posterior(context, &[idx]);
        (cost.0[0], cost.1[0], delay.0[0], delay.1[0])
    }

    /// Monte-Carlo estimate of the safe-set size: evaluates the safe mask
    /// on `samples` random grid points and scales the hit fraction to
    /// `|X|`. Orders of magnitude cheaper than [`Self::safe_set_size`] for
    /// per-period logging (Fig. 13) at the cost of sampling error
    /// `O(|X|/sqrt(samples))`.
    pub fn safe_set_size_sampled(&mut self, context: &[f64], samples: usize) -> usize {
        if self.in_warmup() {
            return self.s0.len();
        }
        let n = samples.min(self.grid.len()).max(1);
        let cand: Vec<usize> = (0..n).map(|_| self.rng.random_range(0..self.grid.len())).collect();
        let [_, delay, map] = self.posterior(context, &cand);
        let mask = self.safe_mask(&delay, &map);
        let hits = mask.iter().filter(|&&m| m).count();
        let est = (hits as f64 / n as f64 * self.grid.len() as f64).round() as usize;
        est.max(self.s0.len())
    }

    /// Freezes scaling, optionally fits hyperparameters, and replays the
    /// warm-up data into fresh GPs.
    fn build_gps(&mut self) {
        let n = self.warmup_data.len();
        debug_assert!(n > 0);
        let dims = self.cfg.context_dims + self.grid.dims();
        // Per-target scaling.
        let mut scales = [Scale { mean: 0.0, std: 1.0 }; 3];
        for k in 0..3 {
            let ys: Vec<f64> = self.warmup_data.iter().map(|(_, y)| y[k]).collect();
            let mean = edgebol_linalg::vecops::mean(&ys);
            let std = edgebol_linalg::vecops::variance(&ys).sqrt().max(1e-3 * mean.abs()).max(1e-6);
            scales[k] = Scale { mean, std };
        }
        // Kernels: defaults, or marginal-likelihood fits on the warm-up data.
        let prior_var = self.cfg.min_prior_var.max(1.0);
        let mut kernels = [
            Kernel::matern32(prior_var, vec![self.cfg.default_lengthscale; dims]),
            Kernel::matern32(prior_var, vec![self.cfg.default_lengthscale; dims]),
            Kernel::matern32(prior_var, vec![self.cfg.default_lengthscale; dims]),
        ];
        let mut noises = [self.cfg.noise_var; 3];
        if self.cfg.fit_hyperparams {
            // Grouped marginal-likelihood fit: one length-scale for the
            // context dimensions, one for the control dimensions, plus
            // noise — 3 parameters, well determined even by a short
            // warm-up (a full 7-dim ARD fit on a dozen corner points is
            // hopelessly underdetermined and, worse, tends to degenerate
            // length-scales that make the safe set either razor-thin or
            // falsely confident). The signal variance stays at the
            // conservative floor (see `min_prior_var`).
            let ctx_dims = self.cfg.context_dims;
            // Lower bound 0.3: the warm-up box spans only ~0.2 of each
            // control dimension, so shorter scales are not identifiable
            // from the prior data — and they cripple safe-set expansion.
            let ls_bounds = (0.3f64, 0.8f64);
            let noise_bounds = (1e-4f64, 0.3f64);
            for k in 0..3 {
                let ys: Vec<f64> =
                    self.warmup_data.iter().map(|(_, y)| scales[k].to_scaled(y[k])).collect();
                let data = &self.warmup_data;
                let objective = |p: &[f64]| -> f64 {
                    let ls_ctx = 10f64.powf(p[0]).clamp(ls_bounds.0, ls_bounds.1);
                    let ls_ctl = 10f64.powf(p[1]).clamp(ls_bounds.0, ls_bounds.1);
                    let noise = 10f64.powf(p[2]).clamp(noise_bounds.0, noise_bounds.1);
                    let mut ls = vec![ls_ctx; ctx_dims];
                    ls.extend(vec![ls_ctl; dims - ctx_dims]);
                    let mut gp = GaussianProcess::new(Kernel::matern32(prior_var, ls), noise);
                    for ((z, _), y) in data.iter().zip(&ys) {
                        if gp.observe(z, *y).is_err() {
                            return f64::INFINITY;
                        }
                    }
                    match gp.log_marginal_likelihood() {
                        Ok(l) if l.is_finite() => -l,
                        _ => f64::INFINITY,
                    }
                };
                let start = [
                    self.cfg.default_lengthscale.log10(),
                    self.cfg.default_lengthscale.log10(),
                    self.cfg.noise_var.log10(),
                ];
                let opts = NelderMeadOptions { max_evals: 120, ..Default::default() };
                let (p, _) = nelder_mead(objective, &start, &opts);
                let ls_ctx = 10f64.powf(p[0]).clamp(ls_bounds.0, ls_bounds.1);
                let ls_ctl = 10f64.powf(p[1]).clamp(ls_bounds.0, ls_bounds.1);
                let mut ls = vec![ls_ctx; ctx_dims];
                ls.extend(vec![ls_ctl; dims - ctx_dims]);
                kernels[k] = Kernel::matern32(prior_var, ls);
                noises[k] = 10f64.powf(p[2]).clamp(noise_bounds.0, noise_bounds.1);
            }
        }
        let mut next = 0;
        let mut gps = kernels.map(|kernel| {
            let mut gp = GaussianProcess::new(kernel, noises[next]);
            next += 1;
            if let Some(cap) = self.cfg.max_observations {
                gp = gp.with_max_observations(cap);
            }
            if let Some(strategy) = self.cfg.gp_evict {
                gp = gp.with_evict_strategy(strategy);
            }
            gp
        });
        // Replay warm-up observations.
        for (z, y) in &self.warmup_data {
            for k in 0..3 {
                gps[k].observe(z, scales[k].to_scaled(y[k])).expect("warmup replay cannot fail");
            }
        }
        for k in 0..3 {
            self.noise_std_raw[k] = noises[k].sqrt() * scales[k].std;
        }
        // Seed the raw-unit window mirror: the GP window is the tail of
        // the warm-up data (the replay above may already have evicted).
        let kept = gps[0].len();
        self.raw_ys =
            self.warmup_data[self.warmup_data.len() - kept..].iter().map(|(_, y)| *y).collect();
        self.scales = Some(scales);
        self.gps = Some(gps);
    }

    /// Serializes the learner's full state — GP windows (raw-unit targets
    /// through the frozen `Scale`), fitted kernels, warm-up buffer, RNG
    /// stream, elites and counters — as a checkpoint payload for
    /// [`Self::restore_state`].
    pub fn save_state(&self) -> Vec<u8> {
        let mut e = Enc::new();
        e.usize(self.t);
        for w in self.rng.state() {
            e.u64(w);
        }
        e.f64(self.constraints.d_max);
        e.f64(self.constraints.rho_min);
        for v in self.noise_std_raw {
            e.f64(v);
        }
        e.usize(self.elites.len());
        for &i in &self.elites {
            e.usize(i);
        }
        e.usize(self.warmup_data.len());
        for (z, y) in &self.warmup_data {
            e.f64s(z);
            for &v in y {
                e.f64(v);
            }
        }
        match (&self.gps, self.scales) {
            (Some(gps), Some(scales)) => {
                e.bool(true);
                for s in scales {
                    e.f64(s.mean);
                    e.f64(s.std);
                }
                for gp in gps.iter() {
                    let k = gp.kernel();
                    e.u8(kernel_kind_byte(k.kind()));
                    e.f64(k.signal_var());
                    e.f64s(k.lengthscales());
                    e.f64(gp.noise_var());
                }
                e.usize(self.cfg.context_dims + self.grid.dims());
                let (xs, _) = gps[0].data();
                e.f64s(xs);
                e.usize(self.raw_ys.len());
                for y in &self.raw_ys {
                    for &v in y {
                        e.f64(v);
                    }
                }
            }
            _ => e.bool(false),
        }
        e.finish()
    }

    /// Restores the learner from a [`Self::save_state`] payload taken on
    /// an identically-configured agent (same config, same grid).
    ///
    /// The GP windows are rebuilt by replaying the stored raw-unit
    /// targets through the frozen scales with the stored (never re-fit)
    /// kernel hyperparameters, re-factoring the Cholesky from scratch.
    /// When the live learner never hit its sliding-window cap, the
    /// restored factorization — and therefore every subsequent selection
    /// — is bit-identical to the uninterrupted run; after live
    /// evictions the append-only replay agrees to ~1e-13 (DESIGN.md
    /// §14).
    ///
    /// # Errors
    /// Any malformed payload yields a typed [`CkptError`] and leaves the
    /// agent unchanged — callers fall back to a cold start.
    pub fn restore_state(&mut self, bytes: &[u8]) -> Result<(), CkptError> {
        let mut d = Dec::new(bytes);
        let t = d.usize()?;
        let rng_state = [d.u64()?, d.u64()?, d.u64()?, d.u64()?];
        let constraints = Constraints { d_max: d.f64()?, rho_min: d.f64()? };
        let noise_std_raw = [d.f64()?, d.f64()?, d.f64()?];
        let n_elites = d.usize()?;
        if n_elites > 64 {
            return Err(CkptError::BadValue(format!("{n_elites} elites (cap is 64)")));
        }
        let mut elites = Vec::with_capacity(n_elites);
        for _ in 0..n_elites {
            let i = d.usize()?;
            if i >= self.grid.len() {
                return Err(CkptError::BadValue(format!(
                    "elite index {i} outside grid of {}",
                    self.grid.len()
                )));
            }
            elites.push(i);
        }
        let dims = self.cfg.context_dims + self.grid.dims();
        let n_warmup = d.usize()?;
        let mut warmup_data = Vec::new();
        for _ in 0..n_warmup {
            let z = d.f64s()?;
            if z.len() != dims {
                return Err(CkptError::BadValue(format!(
                    "warm-up point has {} dims, agent expects {dims}",
                    z.len()
                )));
            }
            warmup_data.push((z, [d.f64()?, d.f64()?, d.f64()?]));
        }
        let built = d.bool()?;
        if !built {
            d.expect_end()?;
            self.t = t;
            self.rng = SmallRng::from_state(rng_state);
            self.constraints = constraints;
            self.noise_std_raw = noise_std_raw;
            self.elites = elites;
            self.warmup_data = warmup_data;
            self.gps = None;
            self.scales = None;
            self.raw_ys = Vec::new();
            return Ok(());
        }
        let mut scales = [Scale { mean: 0.0, std: 1.0 }; 3];
        for s in &mut scales {
            let (mean, std) = (d.f64()?, d.f64()?);
            if !(std.is_finite() && std > 0.0 && mean.is_finite()) {
                return Err(CkptError::BadValue(format!("scale mean {mean}, std {std}")));
            }
            *s = Scale { mean, std };
        }
        let mut kernel_params = Vec::with_capacity(3);
        for k in 0..3 {
            let kind = kernel_kind_from_byte(d.u8()?)?;
            let signal_var = d.f64()?;
            let ls = d.f64s()?;
            let noise = d.f64()?;
            if !(signal_var.is_finite() && signal_var > 0.0 && noise.is_finite() && noise > 0.0) {
                return Err(CkptError::BadValue(format!(
                    "GP {k}: signal_var {signal_var}, noise {noise}"
                )));
            }
            if ls.len() != dims || ls.iter().any(|v| !(v.is_finite() && *v > 0.0)) {
                return Err(CkptError::BadValue(format!("GP {k}: lengthscales {ls:?}")));
            }
            kernel_params.push((kind, signal_var, ls, noise));
        }
        let stored_dims = d.usize()?;
        if stored_dims != dims {
            return Err(CkptError::BadValue(format!(
                "checkpoint has {stored_dims}-dim points, agent expects {dims}"
            )));
        }
        let xs = d.f64s()?;
        let n = d.usize()?;
        if xs.len() != n * dims {
            return Err(CkptError::BadValue(format!(
                "window claims {n} points but carries {} coordinates",
                xs.len()
            )));
        }
        if let Some(cap) = self.cfg.max_observations {
            if n > cap {
                return Err(CkptError::BadValue(format!("window of {n} exceeds cap {cap}")));
            }
        }
        let mut raw_ys = Vec::with_capacity(n);
        for _ in 0..n {
            raw_ys.push([d.f64()?, d.f64()?, d.f64()?]);
        }
        d.expect_end()?;
        // Rebuild the GPs exactly as `build_gps` would, but with the
        // stored (frozen) hyperparameters — never re-fit on restore.
        let mut gps_vec = Vec::with_capacity(3);
        for (kind, signal_var, ls, noise) in kernel_params {
            let mut gp = GaussianProcess::new(Kernel::new(kind, signal_var, ls), noise);
            if let Some(cap) = self.cfg.max_observations {
                gp = gp.with_max_observations(cap);
            }
            if let Some(strategy) = self.cfg.gp_evict {
                gp = gp.with_evict_strategy(strategy);
            }
            gps_vec.push(gp);
        }
        let Ok(mut gps): Result<[GaussianProcess; 3], _> = gps_vec.try_into() else {
            unreachable!("exactly three GPs were built");
        };
        for i in 0..n {
            let z = &xs[i * dims..(i + 1) * dims];
            for k in 0..3 {
                gps[k].observe(z, scales[k].to_scaled(raw_ys[i][k])).map_err(|err| {
                    CkptError::BadValue(format!("window replay failed at point {i}: {err}"))
                })?;
            }
        }
        self.t = t;
        self.rng = SmallRng::from_state(rng_state);
        self.constraints = constraints;
        self.noise_std_raw = noise_std_raw;
        self.elites = elites;
        self.warmup_data = warmup_data;
        self.raw_ys = raw_ys;
        self.scales = Some(scales);
        self.gps = Some(gps);
        Ok(())
    }
}

fn kernel_kind_byte(kind: KernelKind) -> u8 {
    match kind {
        KernelKind::Matern32 => 0,
        KernelKind::Matern52 => 1,
        KernelKind::Rbf => 2,
    }
}

fn kernel_kind_from_byte(b: u8) -> Result<KernelKind, CkptError> {
    match b {
        0 => Ok(KernelKind::Matern32),
        1 => Ok(KernelKind::Matern52),
        2 => Ok(KernelKind::Rbf),
        other => Err(CkptError::BadValue(format!("kernel kind byte {other}"))),
    }
}

impl GridAgent for EdgeBol {
    fn select(&mut self, context: &[f64]) -> usize {
        assert_eq!(context.len(), self.cfg.context_dims, "context dimensionality");
        if self.in_warmup() {
            let pick = self.rng.random_range(0..self.warmup_box.len());
            return self.warmup_box[pick];
        }
        let cand = self.candidates();
        let [cost, delay, map] = self.posterior(context, &cand);
        let mask = self.safe_mask(&delay, &map);

        let b = self.cfg.beta_sqrt;
        // Thompson draws are materialized up front (the scoring closure
        // cannot borrow the RNG mutably while the posteriors are borrowed).
        let thompson: Vec<f64> = if self.cfg.acquisition == Acquisition::ThompsonSampling {
            (0..cand.len())
                .map(|j| cost.0[j] + cost.1[j] * edgebol_linalg::stats::normal01(&mut self.rng))
                .collect()
        } else {
            Vec::new()
        };
        let score = |j: usize| -> f64 {
            match self.cfg.acquisition {
                Acquisition::ConstrainedLcb | Acquisition::UnconstrainedLcb => {
                    cost.0[j] - b * cost.1[j]
                }
                // Negated: we minimize the score below.
                Acquisition::MaxUncertainty => -(delay.1[j].max(map.1[j])),
                Acquisition::ThompsonSampling => thompson[j],
            }
        };

        let use_mask = self.cfg.acquisition != Acquisition::UnconstrainedLcb;
        let in_s0 = |idx: usize| self.s0.binary_search(&idx).is_ok();
        let mut best: Option<(usize, f64)> = None;
        for (j, &idx) in cand.iter().enumerate() {
            if use_mask && !mask[j] && !in_s0(idx) {
                continue;
            }
            let s = score(j);
            if best.is_none_or(|(_, bs)| s < bs) {
                best = Some((idx, s));
            }
        }
        // The safe set always contains S_0, so `best` is always present
        // when use_mask is set; without the mask every candidate competes.
        let chosen = best.expect("candidate set never empty").0;
        self.elites.push(chosen);
        if self.elites.len() > 64 {
            let drop = self.elites.len() - 64;
            self.elites.drain(..drop);
        }
        chosen
    }

    fn update(&mut self, context: &[f64], control_idx: usize, feedback: &Feedback) {
        let z = self.grid.z_vector(context, control_idx);
        let y = [feedback.cost, feedback.delay_s, feedback.map];
        self.t += 1;
        match (&mut self.gps, self.scales) {
            (Some(gps), Some(scales)) => {
                for k in 0..3 {
                    gps[k]
                        .observe(&z, scales[k].to_scaled(y[k]))
                        .expect("online observe cannot fail with positive noise");
                }
                self.raw_ys.push(y);
                let kept = gps[0].len();
                if self.raw_ys.len() > kept {
                    let drop = self.raw_ys.len() - kept;
                    self.raw_ys.drain(..drop);
                }
            }
            _ => {
                self.warmup_data.push((z, y));
                if self.warmup_data.len() >= self.cfg.warmup_rounds {
                    self.build_gps();
                }
            }
        }
    }

    fn name(&self) -> &'static str {
        match self.cfg.acquisition {
            Acquisition::ConstrainedLcb => "EdgeBOL",
            Acquisition::MaxUncertainty => "SafeOpt-like",
            Acquisition::UnconstrainedLcb => "LCB (unconstrained)",
            Acquisition::ThompsonSampling => "EdgeBOL-TS",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A synthetic environment on the unit cube with known optimum:
    /// cost falls as controls fall; delay rises as controls fall.
    /// Constraint: delay <= d_max. The cheapest safe control sits exactly
    /// where delay == d_max.
    struct Toy {
        d_max: f64,
    }

    impl Toy {
        fn eval(&self, grid: &ControlGrid, idx: usize) -> Feedback {
            let c = grid.coords(idx);
            let level: f64 = c.iter().sum::<f64>() / c.len() as f64;
            // Cost 100..300 rising with resources; delay 0.1..0.9 falling.
            let cost = 100.0 + 200.0 * level;
            let delay = 0.9 - 0.8 * level;
            Feedback { cost, delay_s: delay, map: 1.0 }
        }

        fn optimal_cost(&self, grid: &ControlGrid) -> f64 {
            (0..grid.len())
                .map(|i| self.eval(grid, i))
                .filter(|f| f.delay_s <= self.d_max)
                .map(|f| f.cost)
                .fold(f64::INFINITY, f64::min)
        }
    }

    fn cfg() -> EdgeBolConfig {
        let mut c = EdgeBolConfig::paper(Constraints { d_max: 0.5, rho_min: 0.0 });
        c.fit_hyperparams = false; // keep the unit test fast
        c.warmup_rounds = 8;
        c.candidate_subsample = Some(512);
        c
    }

    fn run_toy(cfg: EdgeBolConfig, steps: usize) -> (EdgeBol, Vec<Feedback>) {
        let toy = Toy { d_max: cfg.constraints.d_max };
        let grid = ControlGrid::new(6, 4); // 1296 controls: fast
        let mut agent = EdgeBol::with_grid(cfg, grid);
        let ctx = [0.5, 0.5, 0.1];
        let mut history = Vec::new();
        for _ in 0..steps {
            let idx = agent.select(&ctx);
            let fb = toy.eval(agent.grid(), idx);
            agent.update(&ctx, idx, &fb);
            history.push(fb);
        }
        (agent, history)
    }

    #[test]
    fn warmup_draws_from_s0_only() {
        let toy = Toy { d_max: 0.5 };
        let grid = ControlGrid::new(6, 4);
        let mut agent = EdgeBol::with_grid(cfg(), grid);
        let ctx = [0.5, 0.5, 0.1];
        for _ in 0..8 {
            assert!(agent.in_warmup());
            let idx = agent.select(&ctx);
            let c = agent.grid().coords(idx);
            assert!(c.iter().all(|&v| v >= 0.8 - 1e-12), "warmup pick outside S0: {c:?}");
            let fb = toy.eval(agent.grid(), idx);
            agent.update(&ctx, idx, &fb);
        }
        assert!(!agent.in_warmup());
    }

    #[test]
    fn converges_near_the_constrained_optimum() {
        let c = cfg();
        let toy = Toy { d_max: c.constraints.d_max };
        let (agent, history) = run_toy(c, 60);
        let opt = toy.optimal_cost(agent.grid());
        // Average cost over the last 10 periods within 10% of optimal.
        let tail: f64 = history[50..].iter().map(|f| f.cost).sum::<f64>() / 10.0;
        // The safe set deliberately backs off the boundary by
        // beta * (sigma + noise std), so allow that margin over the
        // noiseless optimum.
        assert!(tail < opt * 1.25, "converged cost {tail:.1} vs optimal {opt:.1}");
    }

    #[test]
    fn constraint_violations_are_rare_after_warmup() {
        let c = cfg();
        let (_, history) = run_toy(c, 80);
        let violations = history[8..].iter().filter(|f| f.delay_s > 0.5 + 1e-9).count();
        assert!(violations <= 8, "{violations} violations in 72 post-warmup periods");
    }

    #[test]
    fn unconstrained_lcb_violates_more() {
        let mut unc = cfg();
        unc.acquisition = Acquisition::UnconstrainedLcb;
        let (_, h_unc) = run_toy(unc, 80);
        let (_, h_safe) = run_toy(cfg(), 80);
        let count = |h: &[Feedback]| h[8..].iter().filter(|f| f.delay_s > 0.5).count();
        assert!(
            count(&h_unc) > count(&h_safe),
            "unconstrained {} vs safe {}",
            count(&h_unc),
            count(&h_safe)
        );
    }

    #[test]
    fn safe_set_grows_from_s0() {
        let c = cfg();
        let toy = Toy { d_max: c.constraints.d_max };
        let grid = ControlGrid::new(6, 4);
        let mut agent = EdgeBol::with_grid(c, grid);
        let ctx = [0.5, 0.5, 0.1];
        let s0_size = agent.safe_set_size(&ctx);
        for _ in 0..40 {
            let idx = agent.select(&ctx);
            let fb = toy.eval(agent.grid(), idx);
            agent.update(&ctx, idx, &fb);
        }
        let later = agent.safe_set_size(&ctx);
        assert!(later > s0_size, "safe set should expand: {later} vs {s0_size}");
        // And it must not include everything: the toy has infeasible
        // controls (delay up to 0.9 > 0.5).
        assert!(later < agent.grid().len(), "safe set cannot be the whole grid");
    }

    #[test]
    fn constraint_change_reuses_knowledge() {
        let c = cfg();
        let toy_loose = Toy { d_max: 0.7 };
        let grid = ControlGrid::new(6, 4);
        let mut agent = EdgeBol::with_grid(
            EdgeBolConfig { constraints: Constraints { d_max: 0.7, rho_min: 0.0 }, ..c },
            grid,
        );
        let ctx = [0.5, 0.5, 0.1];
        for _ in 0..50 {
            let idx = agent.select(&ctx);
            let fb = toy_loose.eval(agent.grid(), idx);
            agent.update(&ctx, idx, &fb);
        }
        // Tighten the constraint; the very next selections should already
        // respect it (non-parametric safe set recomputed from the same GPs).
        agent.set_constraints(Constraints { d_max: 0.45, rho_min: 0.0 });
        let toy_tight = Toy { d_max: 0.45 };
        let mut violations = 0;
        for _ in 0..12 {
            let idx = agent.select(&ctx);
            let fb = toy_tight.eval(agent.grid(), idx);
            if fb.delay_s > 0.45 {
                violations += 1;
            }
            agent.update(&ctx, idx, &fb);
        }
        assert!(violations <= 2, "{violations} violations right after tightening");
    }

    #[test]
    fn thompson_sampling_converges_and_respects_safe_set() {
        let mut c = cfg();
        c.acquisition = Acquisition::ThompsonSampling;
        let toy = Toy { d_max: c.constraints.d_max };
        let (agent, history) = run_toy(c, 80);
        let opt = toy.optimal_cost(agent.grid());
        let tail: f64 = history[70..].iter().map(|f| f.cost).sum::<f64>() / 10.0;
        assert!(tail < opt * 1.35, "TS converged cost {tail:.1} vs optimal {opt:.1}");
        let violations = history[8..].iter().filter(|f| f.delay_s > 0.5 + 1e-9).count();
        assert!(violations <= 10, "{violations} TS violations");
    }

    #[test]
    fn export_matches_import_roundtrip() {
        // A donor that has learned for a while exports its experience;
        // a fresh agent importing it starts post-warmup with the same
        // observation set.
        let (donor, _) = run_toy(cfg(), 30);
        let exp = donor.export_experience();
        assert_eq!(exp.len(), 30, "all observations retained (no window hit)");
        let grid = ControlGrid::new(6, 4);
        let mut warm = EdgeBol::with_grid(cfg(), grid);
        warm.import_experience(&exp);
        assert!(!warm.in_warmup(), "enough donor data must skip warm-up");
        assert_eq!(warm.export_experience().len(), 30);
        // The raw targets survive the standardize/unstandardize roundtrip.
        let back = warm.export_experience();
        for ((za, ya), (zb, yb)) in exp.iter().zip(&back) {
            assert_eq!(za, zb);
            for k in 0..3 {
                assert!((ya[k] - yb[k]).abs() < 1e-9, "target {k} drifted");
            }
        }
    }

    #[test]
    fn warm_started_agent_skips_warmup_phase() {
        let (donor, _) = run_toy(cfg(), 40);
        let mut warm = EdgeBol::with_grid(cfg(), ControlGrid::new(6, 4));
        warm.import_experience(&donor.export_experience());
        // First selection is already posterior-driven, not a random
        // warm-up draw from the corner box.
        assert!(!warm.in_warmup());
        let toy = Toy { d_max: 0.5 };
        let ctx = [0.5, 0.5, 0.1];
        let mut costs = Vec::new();
        for _ in 0..10 {
            let idx = warm.select(&ctx);
            let fb = toy.eval(warm.grid(), idx);
            costs.push(fb.cost);
            warm.update(&ctx, idx, &fb);
        }
        // A cold agent spends its first rounds on the expensive corner
        // box (cost near 300); the warm one must do better on average.
        let mean = costs.iter().sum::<f64>() / costs.len() as f64;
        assert!(mean < 280.0, "warm-start first-10 mean cost {mean:.1}");
    }

    #[test]
    fn partial_import_shortens_warmup() {
        let (donor, _) = run_toy(cfg(), 30);
        let exp = donor.export_experience();
        let mut agent = EdgeBol::with_grid(cfg(), ControlGrid::new(6, 4));
        agent.import_experience(&exp[..3]); // warmup_rounds is 8
        assert!(agent.in_warmup(), "3 of 8 points: still warming up");
        let toy = Toy { d_max: 0.5 };
        let ctx = [0.5, 0.5, 0.1];
        for _ in 0..5 {
            let idx = agent.select(&ctx);
            let fb = toy.eval(agent.grid(), idx);
            agent.update(&ctx, idx, &fb);
        }
        assert!(!agent.in_warmup(), "3 imported + 5 live = 8 rounds");
    }

    #[test]
    #[should_panic(expected = "fresh agent")]
    fn import_after_updates_panics() {
        let (mut donor, _) = run_toy(cfg(), 12);
        let exp = donor.export_experience();
        donor.import_experience(&exp);
    }

    #[test]
    fn checkpoint_restore_resumes_bit_identically() {
        let (mut live, _) = run_toy(cfg(), 30);
        let snapshot = live.save_state();
        let mut restored = EdgeBol::with_grid(cfg(), ControlGrid::new(6, 4));
        restored.restore_state(&snapshot).unwrap();
        assert_eq!(restored.updates(), 30);
        assert!(!restored.in_warmup());
        let toy = Toy { d_max: 0.5 };
        let ctx = [0.5, 0.5, 0.1];
        for step in 0..20 {
            let a = live.select(&ctx);
            let b = restored.select(&ctx);
            assert_eq!(a, b, "selection diverged at post-restore step {step}");
            let fb = toy.eval(live.grid(), a);
            live.update(&ctx, a, &fb);
            restored.update(&ctx, b, &fb);
        }
        // The windows stay in lockstep too: a second checkpoint of each
        // agent is byte-identical.
        assert_eq!(live.save_state(), restored.save_state());
    }

    #[test]
    fn checkpoint_during_warmup_roundtrips() {
        let (mut live, _) = run_toy(cfg(), 4); // warmup_rounds is 8
        assert!(live.in_warmup());
        let snapshot = live.save_state();
        let mut restored = EdgeBol::with_grid(cfg(), ControlGrid::new(6, 4));
        restored.restore_state(&snapshot).unwrap();
        assert!(restored.in_warmup());
        let toy = Toy { d_max: 0.5 };
        let ctx = [0.5, 0.5, 0.1];
        for step in 0..26 {
            let a = live.select(&ctx);
            let b = restored.select(&ctx);
            assert_eq!(a, b, "diverged at step {step} (crosses the GP build)");
            let fb = toy.eval(live.grid(), a);
            live.update(&ctx, a, &fb);
            restored.update(&ctx, b, &fb);
        }
        assert!(!live.in_warmup() && !restored.in_warmup());
        assert_eq!(live.save_state(), restored.save_state());
    }

    #[test]
    fn checkpoint_restore_with_sliding_window_evictions() {
        let mut c = cfg();
        c.max_observations = Some(16); // force evictions well before t=30
        let toy = Toy { d_max: c.constraints.d_max };
        let grid = ControlGrid::new(6, 4);
        let mut live = EdgeBol::with_grid(c.clone(), grid);
        let ctx = [0.5, 0.5, 0.1];
        for _ in 0..30 {
            let idx = live.select(&ctx);
            let fb = toy.eval(live.grid(), idx);
            live.update(&ctx, idx, &fb);
        }
        let mut restored = EdgeBol::with_grid(c, ControlGrid::new(6, 4));
        restored.restore_state(&live.save_state()).unwrap();
        assert_eq!(restored.updates(), 30);
        // Past the cap the re-factored Cholesky is not bit-identical to
        // the downdated one; posteriors must still agree to fp noise.
        let (lm, ls_, ld, lds) = live.debug_posterior(&ctx, 100);
        let (rm, rs, rd, rds) = restored.debug_posterior(&ctx, 100);
        for (a, b) in [(lm, rm), (ls_, rs), (ld, rd), (lds, rds)] {
            assert!((a - b).abs() <= 1e-9 * a.abs().max(1.0), "posterior drift: {a} vs {b}");
        }
    }

    #[test]
    fn truncated_checkpoint_is_typed_error_and_leaves_agent_untouched() {
        let (live, _) = run_toy(cfg(), 20);
        let snapshot = live.save_state();
        for cut in 0..snapshot.len() {
            let mut agent = EdgeBol::with_grid(cfg(), ControlGrid::new(6, 4));
            agent.restore_state(&snapshot[..cut]).expect_err("truncated payload must fail");
            assert!(agent.in_warmup() && agent.updates() == 0, "cut {cut} mutated the agent");
        }
        // An undamaged payload still restores after all the failures.
        let mut agent = EdgeBol::with_grid(cfg(), ControlGrid::new(6, 4));
        agent.restore_state(&snapshot).unwrap();
        assert_eq!(agent.updates(), 20);
    }

    #[test]
    fn name_reflects_acquisition() {
        let agent = EdgeBol::with_grid(cfg(), ControlGrid::new(4, 2));
        assert_eq!(agent.name(), "EdgeBOL");
        let mut sc = cfg();
        sc.acquisition = Acquisition::MaxUncertainty;
        assert_eq!(EdgeBol::with_grid(sc, ControlGrid::new(4, 2)).name(), "SafeOpt-like");
    }
}

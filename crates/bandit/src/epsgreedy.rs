//! Tabular epsilon-greedy baseline.
//!
//! The classic context-free bandit: per-control running means of a
//! penalized cost (violations charged a large penalty), epsilon-greedy
//! selection with a decaying exploration rate. On a 14 641-point grid it
//! illustrates exactly why the paper needs correlation-aware learning:
//! tabular methods cannot share information across neighbouring controls.

use crate::api::{Constraints, Feedback, GridAgent};
use crate::grid::ControlGrid;
use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};

/// The epsilon-greedy agent.
pub struct EpsGreedy {
    grid: ControlGrid,
    constraints: Constraints,
    /// Running mean penalized cost and visit count per control.
    means: Vec<f64>,
    counts: Vec<u32>,
    /// Violation penalty added to the cost.
    penalty: f64,
    /// Exploration floor.
    eps_min: f64,
    /// Steps so far (drives the epsilon decay).
    t: usize,
    rng: SmallRng,
}

impl EpsGreedy {
    /// Creates the baseline over a grid. `penalty` is the cost surcharge
    /// for a constraint-violating period (comparable to the max cost).
    pub fn new(grid: ControlGrid, constraints: Constraints, penalty: f64, seed: u64) -> Self {
        let n = grid.len();
        EpsGreedy {
            grid,
            constraints,
            means: vec![f64::NAN; n],
            counts: vec![0; n],
            penalty,
            eps_min: 0.05,
            t: 0,
            rng: SmallRng::seed_from_u64(seed),
        }
    }

    /// Current exploration rate: `max(eps_min, 1 / (1 + t/20))`.
    pub fn epsilon(&self) -> f64 {
        self.eps_min.max(1.0 / (1.0 + self.t as f64 / 20.0))
    }
}

impl GridAgent for EpsGreedy {
    fn select(&mut self, _context: &[f64]) -> usize {
        self.t += 1;
        if self.rng.random::<f64>() < self.epsilon() {
            return self.rng.random_range(0..self.grid.len());
        }
        // Exploit: best visited cell; random if nothing visited yet.
        let mut best: Option<(usize, f64)> = None;
        for (i, (&m, &c)) in self.means.iter().zip(&self.counts).enumerate() {
            if c == 0 {
                continue;
            }
            if best.is_none_or(|(_, bv)| m < bv) {
                best = Some((i, m));
            }
        }
        match best {
            Some((i, _)) => i,
            None => self.rng.random_range(0..self.grid.len()),
        }
    }

    fn update(&mut self, _context: &[f64], control_idx: usize, feedback: &Feedback) {
        let penalized = if self.constraints.satisfied(feedback.delay_s, feedback.map) {
            feedback.cost
        } else {
            feedback.cost + self.penalty
        };
        let c = &mut self.counts[control_idx];
        *c += 1;
        let m = &mut self.means[control_idx];
        if c == &1 {
            *m = penalized;
        } else {
            *m += (penalized - *m) / *c as f64;
        }
    }

    fn name(&self) -> &'static str {
        "eps-greedy"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn constraints() -> Constraints {
        Constraints { d_max: 0.5, rho_min: 0.0 }
    }

    #[test]
    fn epsilon_decays_to_floor() {
        let mut a = EpsGreedy::new(ControlGrid::new(3, 2), constraints(), 100.0, 1);
        assert!(a.epsilon() > 0.9);
        for _ in 0..10_000 {
            let i = a.select(&[]);
            a.update(&[], i, &Feedback { cost: 1.0, delay_s: 0.1, map: 1.0 });
        }
        assert!((a.epsilon() - 0.05).abs() < 1e-9);
    }

    #[test]
    fn learns_best_arm_on_tiny_grid() {
        // 9 arms; arm with coords (0,0) is cheapest and feasible.
        let grid = ControlGrid::new(3, 2);
        let eval = |grid: &ControlGrid, i: usize| {
            let c = grid.coords(i);
            Feedback { cost: 10.0 + 100.0 * (c[0] + c[1]), delay_s: 0.1, map: 1.0 }
        };
        let mut a = EpsGreedy::new(grid.clone(), constraints(), 1000.0, 2);
        for _ in 0..600 {
            let i = a.select(&[]);
            let fb = eval(&grid, i);
            a.update(&[], i, &fb);
        }
        // Greedy pick (epsilon at floor): run selections, count the modal arm.
        let mut counts = vec![0usize; grid.len()];
        for _ in 0..200 {
            let i = a.select(&[]);
            counts[i] += 1;
            let fb = eval(&grid, i);
            a.update(&[], i, &fb);
        }
        let best = counts.iter().enumerate().max_by_key(|(_, &c)| c).unwrap().0;
        assert_eq!(grid.coords(best), vec![0.0, 0.0], "modal arm should be the cheapest");
    }

    #[test]
    fn violations_are_penalized_away() {
        // Two arms: cheap but violating vs pricier but feasible.
        let grid = ControlGrid::new(2, 1);
        let eval = |i: usize| {
            if i == 0 {
                Feedback { cost: 10.0, delay_s: 2.0, map: 1.0 } // violates
            } else {
                Feedback { cost: 50.0, delay_s: 0.1, map: 1.0 }
            }
        };
        let mut a = EpsGreedy::new(grid, constraints(), 500.0, 3);
        for _ in 0..300 {
            let i = a.select(&[]);
            a.update(&[], i, &eval(i));
        }
        let mut pick_1 = 0;
        for _ in 0..100 {
            let i = a.select(&[]);
            if i == 1 {
                pick_1 += 1;
            }
            a.update(&[], i, &eval(i));
        }
        assert!(pick_1 > 80, "feasible arm picked {pick_1}/100");
    }
}

//! The discrete control grid `X = H x A x Gamma x M`.
//!
//! The paper uses 11 levels per policy, giving `|X| = 11^4 = 14 641`
//! candidate controls (§6.1). Controls are represented as flat indices
//! into this grid; coordinates are normalized to `[0, 1]` per dimension.

/// A uniform grid over the unit hypercube of control policies.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ControlGrid {
    /// Levels per dimension (the paper: 11).
    levels: usize,
    /// Number of control dimensions (the paper: 4).
    dims: usize,
}

impl ControlGrid {
    /// The paper's grid: 11 levels x 4 dimensions.
    pub fn paper() -> Self {
        ControlGrid { levels: 11, dims: 4 }
    }

    /// A custom grid.
    ///
    /// # Panics
    /// Panics if `levels < 2` or `dims == 0`.
    pub fn new(levels: usize, dims: usize) -> Self {
        assert!(levels >= 2, "need at least two levels per dimension");
        assert!(dims >= 1, "need at least one dimension");
        ControlGrid { levels, dims }
    }

    /// Levels per dimension.
    pub fn levels(&self) -> usize {
        self.levels
    }

    /// Number of dimensions.
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// Total number of grid points.
    pub fn len(&self) -> usize {
        self.levels.pow(self.dims as u32)
    }

    /// `true` only for degenerate grids (never: constructor forbids it).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Unit coordinates of a flat index.
    ///
    /// # Panics
    /// Panics if `idx >= self.len()`.
    pub fn coords(&self, idx: usize) -> Vec<f64> {
        assert!(idx < self.len(), "grid index out of range");
        let mut rem = idx;
        let mut out = vec![0.0; self.dims];
        for c in out.iter_mut() {
            let level = rem % self.levels;
            rem /= self.levels;
            *c = level as f64 / (self.levels - 1) as f64;
        }
        out
    }

    /// Flat index of the grid point nearest to arbitrary unit coordinates.
    ///
    /// # Panics
    /// Panics if `coords.len() != self.dims()`.
    pub fn nearest_index(&self, coords: &[f64]) -> usize {
        assert_eq!(coords.len(), self.dims, "coordinate dimensionality");
        let mut idx = 0usize;
        let mut stride = 1usize;
        for &c in coords {
            let level = ((c.clamp(0.0, 1.0) * (self.levels - 1) as f64).round() as usize)
                .min(self.levels - 1);
            idx += level * stride;
            stride *= self.levels;
        }
        idx
    }

    /// The index of the all-ones corner (max resources).
    pub fn max_corner(&self) -> usize {
        self.len() - 1
    }

    /// Indices of the "high-resource box": every dimension at or above the
    /// given unit threshold. This is the paper's initial safe set `S_0`
    /// (max-resource controls are delay-minimal, hence feasible whenever
    /// the problem is feasible at all).
    pub fn corner_box(&self, threshold: f64) -> Vec<usize> {
        (0..self.len()).filter(|&i| self.coords(i).iter().all(|&c| c >= threshold)).collect()
    }

    /// One-step axis neighbours of a grid point (up to `2 * dims`).
    pub fn neighbors(&self, idx: usize) -> Vec<usize> {
        let mut rem = idx;
        let mut levels = vec![0usize; self.dims];
        for l in levels.iter_mut() {
            *l = rem % self.levels;
            rem /= self.levels;
        }
        let mut out = Vec::with_capacity(2 * self.dims);
        let mut stride = 1usize;
        for &level in &levels {
            if level > 0 {
                out.push(idx - stride);
            }
            if level + 1 < self.levels {
                out.push(idx + stride);
            }
            stride *= self.levels;
        }
        out
    }

    /// Flattens a `(context, control)` pair into the GP input
    /// `z = (c, x)`.
    pub fn z_vector(&self, context: &[f64], control_idx: usize) -> Vec<f64> {
        let mut z = Vec::with_capacity(context.len() + self.dims);
        self.write_z(context, control_idx, &mut z);
        z
    }

    /// Appends the GP input `z = (c, x)` for one control onto `out`
    /// without allocating — the batched-posterior hot path builds the flat
    /// candidate matrix through this.
    ///
    /// # Panics
    /// Panics if `control_idx >= self.len()`.
    pub fn write_z(&self, context: &[f64], control_idx: usize, out: &mut Vec<f64>) {
        assert!(control_idx < self.len(), "grid index out of range");
        out.extend_from_slice(context);
        let mut rem = control_idx;
        for _ in 0..self.dims {
            let level = rem % self.levels;
            rem /= self.levels;
            out.push(level as f64 / (self.levels - 1) as f64);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_grid_size() {
        let g = ControlGrid::paper();
        assert_eq!(g.len(), 14_641);
        assert_eq!(g.dims(), 4);
        assert_eq!(g.levels(), 11);
    }

    #[test]
    fn coords_roundtrip() {
        let g = ControlGrid::paper();
        for idx in [0, 1, 10, 11, 121, 14_640, 7_777] {
            let c = g.coords(idx);
            assert_eq!(g.nearest_index(&c), idx, "roundtrip failed for {idx}");
            assert!(c.iter().all(|v| (0.0..=1.0).contains(v)));
        }
    }

    #[test]
    fn coords_are_uniform_levels() {
        let g = ControlGrid::new(11, 1);
        for i in 0..11 {
            assert!((g.coords(i)[0] - i as f64 / 10.0).abs() < 1e-12);
        }
    }

    #[test]
    fn nearest_index_snaps() {
        let g = ControlGrid::new(11, 2);
        // (0.12, 0.88) snaps to level (1, 9).
        let idx = g.nearest_index(&[0.12, 0.88]);
        let c = g.coords(idx);
        assert!((c[0] - 0.1).abs() < 1e-12);
        assert!((c[1] - 0.9).abs() < 1e-12);
        // Out-of-range coordinates clamp.
        assert_eq!(g.nearest_index(&[-3.0, 7.0]), g.nearest_index(&[0.0, 1.0]));
    }

    #[test]
    fn max_corner_is_all_ones() {
        let g = ControlGrid::paper();
        let c = g.coords(g.max_corner());
        assert!(c.iter().all(|&v| (v - 1.0).abs() < 1e-12));
    }

    #[test]
    fn corner_box_contents() {
        let g = ControlGrid::new(11, 4);
        let s0 = g.corner_box(0.8);
        // Levels 0.8, 0.9, 1.0 in each of 4 dims: 3^4 = 81 points.
        assert_eq!(s0.len(), 81);
        assert!(s0.contains(&g.max_corner()));
        for &i in &s0 {
            assert!(g.coords(i).iter().all(|&c| c >= 0.8 - 1e-12));
        }
    }

    #[test]
    fn z_vector_concatenates() {
        let g = ControlGrid::new(11, 4);
        let z = g.z_vector(&[0.5, 0.25, 0.0], g.max_corner());
        assert_eq!(z.len(), 7);
        assert_eq!(&z[..3], &[0.5, 0.25, 0.0]);
        assert!(z[3..].iter().all(|&v| (v - 1.0).abs() < 1e-12));
    }

    #[test]
    fn write_z_appends_and_matches_z_vector() {
        let g = ControlGrid::paper();
        let ctx = [0.5, 0.25, 0.0];
        let mut flat = vec![9.0]; // pre-existing content must survive
        for idx in [0, 1, 121, 7_777, 14_640] {
            g.write_z(&ctx, idx, &mut flat);
        }
        assert_eq!(flat[0], 9.0);
        for (k, idx) in [0, 1, 121, 7_777, 14_640].into_iter().enumerate() {
            assert_eq!(&flat[1 + k * 7..1 + (k + 1) * 7], &g.z_vector(&ctx, idx)[..]);
        }
    }

    #[test]
    fn neighbors_are_one_step_away() {
        let g = ControlGrid::new(11, 4);
        let idx = g.nearest_index(&[0.5, 0.5, 0.5, 0.5]);
        let ns = g.neighbors(idx);
        assert_eq!(ns.len(), 8);
        for n in ns {
            let a = g.coords(idx);
            let b = g.coords(n);
            let dist: f64 = a.iter().zip(&b).map(|(x, y)| (x - y).abs()).sum();
            assert!((dist - 0.1).abs() < 1e-9, "neighbor not one step: {dist}");
        }
        // Corners have fewer neighbors.
        assert_eq!(g.neighbors(0).len(), 4);
        assert_eq!(g.neighbors(g.max_corner()).len(), 4);
    }

    #[test]
    #[should_panic(expected = "grid index out of range")]
    fn coords_rejects_out_of_range() {
        let _ = ControlGrid::paper().coords(14_641);
    }
}

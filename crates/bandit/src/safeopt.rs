//! SafeOpt-style baseline: explicit safe-set expansion.
//!
//! The paper evaluated SafeOpt's acquisition and found it "has overly slow
//! convergence" (§5), which motivated the constrained-LCB rule. This
//! baseline reuses the exact GP/safe-set machinery of [`EdgeBol`] but
//! selects the safe control with the *largest constraint uncertainty* —
//! the uncertainty-sampling flavour of safe exploration.

use crate::api::{Constraints, Feedback, GridAgent};
use crate::edgebol::{Acquisition, EdgeBol, EdgeBolConfig};
use crate::grid::ControlGrid;

/// The SafeOpt-flavoured agent (a thin wrapper around [`EdgeBol`] with the
/// [`Acquisition::MaxUncertainty`] rule).
pub struct SafeOptLike {
    inner: EdgeBol,
}

impl SafeOptLike {
    /// Creates the baseline with the paper's grid.
    pub fn new(constraints: Constraints) -> Self {
        Self::with_grid(constraints, ControlGrid::paper())
    }

    /// Creates the baseline on a custom grid.
    pub fn with_grid(constraints: Constraints, grid: ControlGrid) -> Self {
        let cfg = EdgeBolConfig {
            acquisition: Acquisition::MaxUncertainty,
            ..EdgeBolConfig::paper(constraints)
        };
        SafeOptLike { inner: EdgeBol::with_grid(cfg, grid) }
    }

    /// Creates from a full config (acquisition is forced).
    pub fn from_config(mut cfg: EdgeBolConfig, grid: ControlGrid) -> Self {
        cfg.acquisition = Acquisition::MaxUncertainty;
        SafeOptLike { inner: EdgeBol::with_grid(cfg, grid) }
    }

    /// Access to the wrapped agent (safe-set size, etc.).
    pub fn inner_mut(&mut self) -> &mut EdgeBol {
        &mut self.inner
    }
}

impl GridAgent for SafeOptLike {
    fn select(&mut self, context: &[f64]) -> usize {
        self.inner.select(context)
    }

    fn update(&mut self, context: &[f64], control_idx: usize, feedback: &Feedback) {
        self.inner.update(context, control_idx, feedback);
    }

    fn name(&self) -> &'static str {
        "SafeOpt-like"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn explores_safely_but_converges_slower_on_cost() {
        // Same toy as the EdgeBol tests: cost rises with resources, delay
        // falls; optimum sits at the constraint boundary.
        let eval = |grid: &ControlGrid, idx: usize| -> Feedback {
            let c = grid.coords(idx);
            let level: f64 = c.iter().sum::<f64>() / c.len() as f64;
            Feedback { cost: 100.0 + 200.0 * level, delay_s: 0.9 - 0.8 * level, map: 1.0 }
        };
        let constraints = Constraints { d_max: 0.5, rho_min: 0.0 };
        let grid = ControlGrid::new(6, 4);
        let ctx = [0.5, 0.5, 0.1];

        let run = |mut agent: Box<dyn GridAgent>| -> (f64, usize) {
            let grid = ControlGrid::new(6, 4);
            let mut tail_cost = 0.0;
            let mut violations = 0;
            for t in 0..60 {
                let idx = agent.select(&ctx);
                let fb = eval(&grid, idx);
                if fb.delay_s > 0.5 + 1e-9 && t >= 12 {
                    violations += 1;
                }
                if t >= 50 {
                    tail_cost += fb.cost / 10.0;
                }
                agent.update(&ctx, idx, &fb);
            }
            (tail_cost, violations)
        };

        let mut cfg = EdgeBolConfig::paper(constraints);
        cfg.fit_hyperparams = false;
        cfg.warmup_rounds = 8;
        cfg.candidate_subsample = Some(512);
        let edgebol = Box::new(EdgeBol::with_grid(cfg.clone(), grid.clone()));
        let safeopt = Box::new(SafeOptLike::from_config(cfg, grid));

        let (cost_eb, viol_eb) = run(edgebol);
        let (cost_so, viol_so) = run(safeopt);
        // The SafeOpt-flavoured acquisition explores; it should not beat
        // EdgeBOL's converged cost (the paper's observation).
        assert!(
            cost_so >= cost_eb - 1.0,
            "SafeOpt tail cost {cost_so:.1} unexpectedly beats EdgeBOL {cost_eb:.1}"
        );
        // Both remain safe almost always.
        assert!(viol_eb <= 8, "{viol_eb}");
        assert!(viol_so <= 8, "{viol_so}");
    }

    #[test]
    fn name_is_stable() {
        let s = SafeOptLike::with_grid(
            Constraints { d_max: 1.0, rho_min: 0.0 },
            ControlGrid::new(4, 2),
        );
        assert_eq!(s.name(), "SafeOpt-like");
    }
}

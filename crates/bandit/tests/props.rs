//! Property-based tests of the bandit layer.

use edgebol_bandit::{
    Acquisition, Constraints, ControlGrid, EdgeBol, EdgeBolConfig, Feedback, GridAgent, Oracle,
};
use proptest::prelude::*;

proptest! {
    /// Grid index/coordinate round-trips for arbitrary grids.
    #[test]
    fn grid_roundtrip(levels in 2usize..8, dims in 1usize..4, salt in 0usize..1000) {
        let g = ControlGrid::new(levels, dims);
        let idx = salt % g.len();
        let c = g.coords(idx);
        prop_assert_eq!(g.nearest_index(&c), idx);
        prop_assert!(c.iter().all(|v| (0.0..=1.0).contains(v)));
        // Neighbours differ in exactly one coordinate by one level.
        for nb in g.neighbors(idx) {
            let cn = g.coords(nb);
            let diffs: Vec<f64> = c
                .iter()
                .zip(&cn)
                .map(|(a, b)| (a - b).abs())
                .filter(|d| *d > 1e-12)
                .collect();
            prop_assert_eq!(diffs.len(), 1);
            prop_assert!((diffs[0] - 1.0 / (levels - 1) as f64).abs() < 1e-9);
        }
    }

    /// The oracle's answer is feasible and no feasible point beats it.
    #[test]
    fn oracle_is_optimal(levels in 3usize..7, d_max in 0.2f64..0.9) {
        let g = ControlGrid::new(levels, 2);
        let eval = |idx: usize| {
            let c = g.coords(idx);
            let level: f64 = c.iter().sum::<f64>() / 2.0;
            (100.0 + 200.0 * level, 0.9 - 0.8 * level, 1.0)
        };
        let constraints = Constraints { d_max, rho_min: 0.0 };
        let out = Oracle::search(&g, &constraints, eval);
        if out.feasible {
            let (c, d, r) = eval(out.best_idx);
            prop_assert!(constraints.satisfied(d, r));
            prop_assert_eq!(c, out.best_cost);
            for idx in 0..g.len() {
                let (cost, delay, rho) = eval(idx);
                if constraints.satisfied(delay, rho) {
                    prop_assert!(cost >= out.best_cost - 1e-12);
                }
            }
        }
    }

    /// Warm-up selections always come from the high-resource box, for any
    /// seed and grid size.
    #[test]
    fn warmup_stays_in_box(seed in 0u64..200, levels in 4usize..8) {
        let mut cfg = EdgeBolConfig::paper(Constraints { d_max: 1.0, rho_min: 0.0 });
        cfg.seed = seed;
        cfg.fit_hyperparams = false;
        cfg.warmup_rounds = 5;
        let threshold = cfg.s0_threshold;
        let mut agent = EdgeBol::with_grid(cfg, ControlGrid::new(levels, 3));
        let ctx = [0.5, 0.5, 0.5];
        for _ in 0..5 {
            let idx = agent.select(&ctx);
            let c = agent.grid().coords(idx);
            prop_assert!(c.iter().all(|&v| v >= threshold - 1e-9), "{c:?}");
            agent.update(&ctx, idx, &Feedback { cost: 1.0, delay_s: 0.1, map: 1.0 });
        }
        prop_assert!(!agent.in_warmup());
    }

    /// After warm-up every selection is a valid grid index regardless of
    /// acquisition rule, and updates never panic.
    #[test]
    fn selections_always_valid(
        seed in 0u64..100,
        acq_pick in 0usize..4,
        cost_scale in 1.0f64..500.0,
    ) {
        let acq = [
            Acquisition::ConstrainedLcb,
            Acquisition::MaxUncertainty,
            Acquisition::UnconstrainedLcb,
            Acquisition::ThompsonSampling,
        ][acq_pick];
        let mut cfg = EdgeBolConfig::paper(Constraints { d_max: 0.5, rho_min: 0.0 });
        cfg.seed = seed;
        cfg.acquisition = acq;
        cfg.fit_hyperparams = false;
        cfg.warmup_rounds = 4;
        cfg.candidate_subsample = Some(64);
        let grid = ControlGrid::new(5, 3);
        let mut agent = EdgeBol::with_grid(cfg, grid.clone());
        let ctx = [0.2, 0.8, 0.0];
        for t in 0..15 {
            let idx = agent.select(&ctx);
            prop_assert!(idx < grid.len());
            let level: f64 = grid.coords(idx).iter().sum::<f64>() / 3.0;
            agent.update(
                &ctx,
                idx,
                &Feedback {
                    cost: cost_scale * (1.0 + level),
                    delay_s: 0.9 - 0.8 * level,
                    map: 1.0,
                },
            );
            prop_assert_eq!(agent.updates(), t + 1);
        }
    }
}

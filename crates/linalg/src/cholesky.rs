//! Cholesky factorization of symmetric positive-definite matrices,
//! including the incremental row/column append and delete-row downdate
//! used by the online GP's sliding window.

use crate::{solve_lower, solve_lower_mat, solve_upper, solve_upper_mat, LinalgError, Mat, Result};

/// Lower-triangular Cholesky factor `L` of an SPD matrix `A = L L^T`.
///
/// The factor supports:
/// * vector and matrix solves against `A`,
/// * `log(det(A))` for marginal-likelihood computation,
/// * **incremental append** ([`Cholesky::append`]): growing `A` by one
///   bordered row/column in `O(n^2)` instead of refactorizing in `O(n^3)`,
///   which is what makes the online learner cheap per time period.
#[derive(Debug, Clone)]
pub struct Cholesky {
    /// Lower-triangular factor; entries above the diagonal are zero.
    l: Mat,
}

/// Initial jitter added to the diagonal when a factorization fails, then
/// escalated multiplicatively up to [`MAX_JITTER`].
const BASE_JITTER: f64 = 1e-10;
/// Largest diagonal jitter [`Cholesky::factor`] will attempt.
const MAX_JITTER: f64 = 1e-4;

impl Cholesky {
    /// Factorizes an SPD matrix, escalating a diagonal jitter from
    /// `BASE_JITTER` (1e-10) to `MAX_JITTER` (1e-4) if the matrix is numerically
    /// on the edge of positive-definiteness (routine for kernel matrices
    /// with near-duplicate inputs).
    ///
    /// # Errors
    /// Returns [`LinalgError::NotPositiveDefinite`] when even the maximum
    /// jitter cannot rescue the factorization, and
    /// [`LinalgError::DimensionMismatch`] for non-square input.
    pub fn factor(a: &Mat) -> Result<Self> {
        if !a.is_square() {
            return Err(LinalgError::DimensionMismatch {
                context: "Cholesky of non-square matrix",
            });
        }
        match Self::factor_raw(a, 0.0) {
            Ok(ok) => return Ok(ok),
            Err(_) => {
                let mut jitter = BASE_JITTER;
                while jitter <= MAX_JITTER {
                    if let Ok(ok) = Self::factor_raw(a, jitter) {
                        return Ok(ok);
                    }
                    jitter *= 10.0;
                }
            }
        }
        Err(LinalgError::NotPositiveDefinite { pivot: 0, jitter: MAX_JITTER })
    }

    /// Single factorization attempt with a fixed diagonal jitter.
    fn factor_raw(a: &Mat, jitter: f64) -> Result<Self> {
        let n = a.rows();
        let mut l = Mat::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let mut sum = a[(i, j)];
                if i == j {
                    sum += jitter;
                }
                for k in 0..j {
                    sum -= l[(i, k)] * l[(j, k)];
                }
                if i == j {
                    if sum <= 0.0 || !sum.is_finite() {
                        return Err(LinalgError::NotPositiveDefinite { pivot: i, jitter });
                    }
                    l[(i, j)] = sum.sqrt();
                } else {
                    l[(i, j)] = sum / l[(j, j)];
                }
            }
        }
        Ok(Cholesky { l })
    }

    /// An empty (0x0) factor, the starting point for incremental growth.
    pub fn empty() -> Self {
        Cholesky { l: Mat::zeros(0, 0) }
    }

    /// Dimension of the factored matrix.
    #[inline]
    pub fn dim(&self) -> usize {
        self.l.rows()
    }

    /// Borrow of the lower-triangular factor.
    #[inline]
    pub fn factor_l(&self) -> &Mat {
        &self.l
    }

    /// Appends one bordered row/column to the factored matrix.
    ///
    /// If the current factor corresponds to `A` (`n x n`), this updates it
    /// to the factor of the `(n+1) x (n+1)` matrix
    /// `[[A, k], [k^T, kappa]]` in `O(n^2)` time, where `k` is the cross
    /// column and `kappa` the new diagonal element.
    ///
    /// # Errors
    /// Returns [`LinalgError::DimensionMismatch`] when `k.len() != n` and
    /// [`LinalgError::NotPositiveDefinite`] when the Schur complement
    /// `kappa - |L^{-1}k|^2` is not positive (the bordered matrix is not
    /// SPD). In the GP this is prevented by the observation-noise term on
    /// the diagonal.
    pub fn append(&mut self, k: &[f64], kappa: f64) -> Result<()> {
        let n = self.dim();
        if k.len() != n {
            return Err(LinalgError::DimensionMismatch { context: "append: cross-column length" });
        }
        // New row of L: l_new = L^{-1} k ; new diagonal = sqrt(kappa - |l_new|^2).
        let lrow = if n > 0 { solve_lower(&self.l, k) } else { Vec::new() };
        let mut schur = kappa - crate::vecops::dot(&lrow, &lrow);
        if schur <= 0.0 || !schur.is_finite() {
            // One small rescue consistent with factor(): jitter the diagonal.
            schur = kappa + MAX_JITTER - crate::vecops::dot(&lrow, &lrow);
            if schur <= 0.0 || !schur.is_finite() {
                return Err(LinalgError::NotPositiveDefinite { pivot: n, jitter: MAX_JITTER });
            }
        }
        let mut grown = Mat::zeros(n + 1, n + 1);
        for i in 0..n {
            let src = self.l.row(i);
            grown.row_mut(i)[..n].copy_from_slice(src);
        }
        grown.row_mut(n)[..n].copy_from_slice(&lrow);
        grown[(n, n)] = schur.sqrt();
        self.l = grown;
        Ok(())
    }

    /// Returns the factor of the matrix with row and column `idx` removed,
    /// in `O(n^2)` time — the *delete-row downdate*.
    ///
    /// If the current factor corresponds to `A` (`n x n`), the result
    /// factors the `(n-1) x (n-1)` matrix obtained by deleting row and
    /// column `idx` of `A`. This is what makes the GP sliding window cheap
    /// at steady state: evicting the oldest observation is `delete_row(0)`
    /// instead of an `O(n^3)` refactorization.
    ///
    /// # Algorithm
    /// Removing row `idx` of `L` leaves an `(n-1) x n` lower-Hessenberg
    /// matrix `M` with `M M^T = A'` (the target matrix). A chase of Givens
    /// rotations applied on the right — rotation `k` mixes columns `(k,
    /// k+1)` to annihilate `M[k][k+1]` — restores lower-triangularity
    /// without changing `M M^T`, and the result is the unique Cholesky
    /// factor of `A'` (its diagonal `r = hypot(m_kk, m_kk1)` is positive by
    /// construction). Deleting a row *adds* the rank-1 term `c c^T` to the
    /// trailing block (it removes conditioning information), so unlike a
    /// true rank-1 downdate no cancellation can occur: the only failure
    /// mode is non-finite input, which is reported as an error so callers
    /// can fall back to a jittered refactorization.
    ///
    /// The chase runs over the *transpose* of `M`, turning the column
    /// rotations into [`crate::vecops::rot`] over two contiguous slices.
    ///
    /// # Errors
    /// Returns [`LinalgError::DimensionMismatch`] when `idx >= n` and
    /// [`LinalgError::NotPositiveDefinite`] when a pivot comes out zero or
    /// non-finite (possible only for degenerate or non-finite factors).
    pub fn delete_row(&self, idx: usize) -> Result<Self> {
        let n = self.dim();
        if idx >= n {
            return Err(LinalgError::DimensionMismatch {
                context: "delete_row: index out of range",
            });
        }
        let m = n - 1;
        if m == 0 {
            return Ok(Cholesky::empty());
        }
        // W[j][i] = M[i][j] where M is L with row `idx` removed: row j of W
        // is column j of M, so the Givens chase streams contiguous memory.
        let mut w = Mat::zeros(n, m);
        for i in 0..m {
            let src = if i < idx { i } else { i + 1 };
            let lrow = self.l.row(src);
            for (j, &v) in lrow.iter().enumerate().take(src + 1) {
                w[(j, i)] = v;
            }
        }
        // Chase the superdiagonal: step k zeroes M[k][k+1] by rotating
        // columns (k, k+1) of M — rows (k, k+1) of W. Rows of M above k are
        // already triangular with zeros in both columns, so only entries
        // k.. participate.
        for k in idx..m {
            let (head, tail) = w.split_rows_mut(k + 1);
            let wk = &mut head[k * m + k..(k + 1) * m];
            let wk1 = &mut tail[k..m];
            let (a, b) = (wk[0], wk1[0]);
            let r = a.hypot(b);
            if r <= 0.0 || !r.is_finite() {
                return Err(LinalgError::NotPositiveDefinite { pivot: k, jitter: 0.0 });
            }
            let (c, s) = (a / r, b / r);
            crate::vecops::rot(c, s, wk, wk1);
            // The pivot pair is known exactly; kill its rounding error.
            wk[0] = r;
            wk1[0] = 0.0;
        }
        let mut l = Mat::zeros(m, m);
        for i in 0..m {
            let row = l.row_mut(i);
            for (j, dst) in row.iter_mut().enumerate().take(i + 1) {
                *dst = w[(j, i)];
            }
        }
        Ok(Cholesky { l })
    }

    /// Solves `A x = b` via the two triangular solves.
    ///
    /// # Panics
    /// Panics if `b.len() != self.dim()`.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        let y = solve_lower(&self.l, b);
        solve_upper(&self.l, &y)
    }

    /// Solves `L y = b` only (half solve), as needed for posterior
    /// variances where `sigma^2(z) = k(z,z) - |L^{-1} k_z|^2`.
    pub fn half_solve(&self, b: &[f64]) -> Vec<f64> {
        solve_lower(&self.l, b)
    }

    /// Batched half solve with matrix right-hand side (`n x m`).
    pub fn half_solve_mat(&self, b: &Mat) -> Mat {
        solve_lower_mat(&self.l, b)
    }

    /// Batched solve `A X = B` with a matrix right-hand side (`n x m`):
    /// both triangular solves run once over all columns instead of `m`
    /// separate vector solves, which is the posterior hot path when many
    /// right-hand sides share one factor.
    pub fn solve_mat(&self, b: &Mat) -> Mat {
        let y = solve_lower_mat(&self.l, b);
        solve_upper_mat(&self.l, &y)
    }

    /// `log(det(A)) = 2 * sum_i log(L[i][i])`.
    pub fn log_det(&self) -> f64 {
        (0..self.dim()).map(|i| self.l[(i, i)].ln()).sum::<f64>() * 2.0
    }

    /// Reconstructs `A = L L^T` (mainly for tests and debugging).
    pub fn reconstruct(&self) -> Mat {
        let n = self.dim();
        Mat::from_fn(n, n, |i, j| {
            let lim = i.min(j) + 1;
            (0..lim).map(|k| self.l[(i, k)] * self.l[(j, k)]).sum()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds a random SPD matrix A = B B^T + n*I.
    fn random_spd(n: usize, seed: u64) -> Mat {
        // Tiny deterministic LCG so the test has no RNG dependency.
        let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
        };
        let b = Mat::from_fn(n, n, |_, _| next());
        let mut a = b.matmul(&b.transpose());
        a.add_diagonal(n as f64);
        a
    }

    #[test]
    fn factor_reconstructs_input() {
        let a = random_spd(8, 42);
        let c = Cholesky::factor(&a).unwrap();
        let r = c.reconstruct();
        for i in 0..8 {
            for j in 0..8 {
                assert!((a[(i, j)] - r[(i, j)]).abs() < 1e-9, "({i},{j})");
            }
        }
    }

    #[test]
    fn solve_inverts() {
        let a = random_spd(6, 7);
        let c = Cholesky::factor(&a).unwrap();
        let b = vec![1.0, -2.0, 0.5, 3.0, 0.0, 1.5];
        let x = c.solve(&b);
        let back = a.matvec(&x);
        for (got, want) in back.iter().zip(&b) {
            assert!((got - want).abs() < 1e-8);
        }
    }

    #[test]
    fn rejects_non_square() {
        let m = Mat::zeros(2, 3);
        assert!(matches!(Cholesky::factor(&m), Err(LinalgError::DimensionMismatch { .. })));
    }

    #[test]
    fn rejects_indefinite() {
        // Eigenvalues 1 and -1: indefinite beyond any reasonable jitter.
        let m = Mat::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        assert!(matches!(Cholesky::factor(&m), Err(LinalgError::NotPositiveDefinite { .. })));
    }

    #[test]
    fn jitter_rescues_near_singular() {
        // Rank-1 PSD matrix: singular but PSD; jitter should rescue it.
        let m = Mat::from_rows(&[&[1.0, 1.0], &[1.0, 1.0]]);
        let c = Cholesky::factor(&m).expect("jitter should rescue PSD matrix");
        assert_eq!(c.dim(), 2);
    }

    #[test]
    fn incremental_append_matches_batch_factorization() {
        let n = 10;
        let a = random_spd(n, 99);
        let batch = Cholesky::factor(&a).unwrap();

        let mut inc = Cholesky::empty();
        for i in 0..n {
            let cross: Vec<f64> = (0..i).map(|j| a[(i, j)]).collect();
            inc.append(&cross, a[(i, i)]).unwrap();
        }
        assert_eq!(inc.dim(), n);
        for i in 0..n {
            for j in 0..=i {
                assert!(
                    (inc.factor_l()[(i, j)] - batch.factor_l()[(i, j)]).abs() < 1e-9,
                    "L mismatch at ({i},{j})"
                );
            }
        }
    }

    #[test]
    fn append_rejects_wrong_cross_length() {
        let mut c = Cholesky::empty();
        c.append(&[], 2.0).unwrap();
        assert!(matches!(c.append(&[1.0, 2.0], 3.0), Err(LinalgError::DimensionMismatch { .. })));
    }

    /// `A` with row and column `idx` removed.
    fn submatrix_without(a: &Mat, idx: usize) -> Mat {
        let n = a.rows();
        Mat::from_fn(n - 1, n - 1, |i, j| {
            let si = if i < idx { i } else { i + 1 };
            let sj = if j < idx { j } else { j + 1 };
            a[(si, sj)]
        })
    }

    #[test]
    fn delete_row_matches_scratch_factor_every_index() {
        let n = 8;
        let a = random_spd(n, 17);
        let full = Cholesky::factor(&a).unwrap();
        for idx in 0..n {
            let down = full.delete_row(idx).unwrap();
            let scratch = Cholesky::factor(&submatrix_without(&a, idx)).unwrap();
            for i in 0..n - 1 {
                for j in 0..=i {
                    assert!(
                        (down.factor_l()[(i, j)] - scratch.factor_l()[(i, j)]).abs() < 1e-9,
                        "idx {idx}: L mismatch at ({i},{j})"
                    );
                }
            }
        }
    }

    #[test]
    fn delete_then_append_tracks_sliding_window() {
        // Emulate the GP steady state: drop row 0, append a new bordered
        // row, compare against factoring the shifted matrix from scratch.
        let n = 9;
        let a = random_spd(n + 1, 5);
        let window = Mat::from_fn(n, n, |i, j| a[(i, j)]);
        let mut ch = Cholesky::factor(&window).unwrap();
        ch = ch.delete_row(0).unwrap();
        let cross: Vec<f64> = (1..n).map(|i| a[(n, i)]).collect();
        ch.append(&cross, a[(n, n)]).unwrap();
        let shifted = Mat::from_fn(n, n, |i, j| a[(i + 1, j + 1)]);
        let scratch = Cholesky::factor(&shifted).unwrap();
        for i in 0..n {
            for j in 0..=i {
                assert!(
                    (ch.factor_l()[(i, j)] - scratch.factor_l()[(i, j)]).abs() < 1e-9,
                    "L mismatch at ({i},{j})"
                );
            }
        }
    }

    #[test]
    fn delete_row_shrinks_to_empty_and_regrows() {
        let a = Mat::from_rows(&[&[4.0]]);
        let ch = Cholesky::factor(&a).unwrap();
        let mut empty = ch.delete_row(0).unwrap();
        assert_eq!(empty.dim(), 0);
        empty.append(&[], 9.0).unwrap();
        assert!((empty.factor_l()[(0, 0)] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn delete_row_rejects_out_of_range() {
        let ch = Cholesky::factor(&random_spd(3, 1)).unwrap();
        assert!(matches!(ch.delete_row(3), Err(LinalgError::DimensionMismatch { .. })));
        let empty = Cholesky::empty();
        assert!(matches!(empty.delete_row(0), Err(LinalgError::DimensionMismatch { .. })));
    }

    #[test]
    fn delete_row_survives_near_singular_factor() {
        // A nearly rank-deficient PSD matrix: the factorization needs its
        // rescue jitter; the downdate of the resulting factor must still
        // reconstruct the submatrix (deleting a row only *adds* the rank-1
        // term back into the trailing block, so no cancellation occurs).
        let base = Mat::from_rows(&[&[1.0, 1.0, 0.5], &[1.0, 1.0, 0.5], &[0.5, 0.5, 0.3]]);
        let ch = Cholesky::factor(&base).expect("jitter rescues the PSD matrix");
        let down = ch.delete_row(0).unwrap();
        let r = down.reconstruct();
        for i in 0..2 {
            for j in 0..2 {
                assert!(
                    (r[(i, j)] - base[(i + 1, j + 1)]).abs() < 1e-3,
                    "({i},{j}): {} vs {}",
                    r[(i, j)],
                    base[(i + 1, j + 1)]
                );
            }
        }
    }

    #[test]
    fn solve_mat_matches_vector_solves() {
        let a = random_spd(6, 21);
        let c = Cholesky::factor(&a).unwrap();
        let b = Mat::from_fn(6, 4, |i, j| (i as f64 - j as f64) * 0.3);
        let x = c.solve_mat(&b);
        for col in 0..4 {
            let bcol: Vec<f64> = (0..6).map(|r| b[(r, col)]).collect();
            let want = c.solve(&bcol);
            for r in 0..6 {
                assert!((x[(r, col)] - want[r]).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn log_det_matches_known_value() {
        // det([[4,0],[0,9]]) = 36.
        let a = Mat::from_rows(&[&[4.0, 0.0], &[0.0, 9.0]]);
        let c = Cholesky::factor(&a).unwrap();
        assert!((c.log_det() - 36f64.ln()).abs() < 1e-12);
    }

    #[test]
    fn half_solve_consistency() {
        let a = random_spd(5, 3);
        let c = Cholesky::factor(&a).unwrap();
        let b = vec![1.0; 5];
        let y = c.half_solve(&b);
        // |L^{-1} b|^2 must equal b^T A^{-1} b.
        let quad: f64 = crate::vecops::dot(&y, &y);
        let x = c.solve(&b);
        let quad2: f64 = crate::vecops::dot(&b, &x);
        assert!((quad - quad2).abs() < 1e-9);
    }

    #[test]
    fn half_solve_mat_matches_vector_half_solves() {
        let a = random_spd(5, 11);
        let c = Cholesky::factor(&a).unwrap();
        let b = Mat::from_fn(5, 3, |i, j| (i + j) as f64 * 0.5 - 1.0);
        let x = c.half_solve_mat(&b);
        for col in 0..3 {
            let bcol: Vec<f64> = (0..5).map(|r| b[(r, col)]).collect();
            let want = c.half_solve(&bcol);
            for r in 0..5 {
                assert!((x[(r, col)] - want[r]).abs() < 1e-10);
            }
        }
    }
}

//! Dense linear-algebra substrate for the EdgeBOL reproduction.
//!
//! The Gaussian-process machinery in `edgebol-gp` needs a small but
//! reliable set of dense operations over symmetric positive-definite (SPD)
//! kernel matrices: Cholesky factorization (including *incremental* updates
//! when one observation is appended), triangular solves with vector and
//! matrix right-hand sides, and log-determinants for marginal likelihoods.
//!
//! Everything here is written against plain `Vec<f64>` storage in row-major
//! order, with no unsafe code and no external BLAS. The matrices involved in
//! EdgeBOL are modest (hundreds to a few thousand rows), so clarity and
//! robustness are favoured over micro-optimization — in the spirit of the
//! smoltcp design notes this workspace follows.
//!
//! # Example
//!
//! ```
//! use edgebol_linalg::{Mat, Cholesky};
//!
//! // A 2x2 SPD matrix.
//! let a = Mat::from_rows(&[&[4.0, 2.0], &[2.0, 3.0]]);
//! let chol = Cholesky::factor(&a).unwrap();
//! let x = chol.solve(&[2.0, 1.0]);
//! // Verify A * x == b.
//! let b = a.matvec(&x);
//! assert!((b[0] - 2.0).abs() < 1e-12 && (b[1] - 1.0).abs() < 1e-12);
//! ```

mod cholesky;
mod matrix;
pub mod stats;
mod triangular;
pub mod vecops;

pub use cholesky::Cholesky;
pub use matrix::Mat;
pub use triangular::{solve_lower, solve_lower_mat, solve_upper, solve_upper_mat};

/// Errors produced by the linear-algebra layer.
#[derive(Debug, Clone, PartialEq)]
pub enum LinalgError {
    /// Cholesky factorization failed: the matrix is not positive definite
    /// (or is numerically indefinite) at the reported pivot index, even
    /// after the maximum jitter was applied.
    NotPositiveDefinite {
        /// Index of the failing pivot.
        pivot: usize,
        /// Last jitter value that was attempted.
        jitter: f64,
    },
    /// Operand dimensions do not agree.
    DimensionMismatch {
        /// Human-readable description of the mismatch.
        context: &'static str,
    },
}

impl std::fmt::Display for LinalgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LinalgError::NotPositiveDefinite { pivot, jitter } => write!(
                f,
                "matrix is not positive definite at pivot {pivot} (max jitter tried: {jitter:e})"
            ),
            LinalgError::DimensionMismatch { context } => {
                write!(f, "dimension mismatch: {context}")
            }
        }
    }
}

impl std::error::Error for LinalgError {}

/// Convenient result alias for fallible linear-algebra operations.
pub type Result<T> = std::result::Result<T, LinalgError>;

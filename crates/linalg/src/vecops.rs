//! Small vector kernels used across the workspace.
//!
//! These are the inner loops of the GP posterior computation, so they are
//! written to be auto-vectorization friendly (plain indexed loops over
//! slices of equal, asserted length).

/// Dot product of two equal-length slices.
///
/// # Panics
/// Panics if the slices have different lengths.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot: length mismatch");
    let mut acc = 0.0;
    for i in 0..a.len() {
        acc += a[i] * b[i];
    }
    acc
}

/// `y += alpha * x` (BLAS axpy).
///
/// # Panics
/// Panics if the slices have different lengths.
#[inline]
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy: length mismatch");
    for i in 0..x.len() {
        y[i] += alpha * x[i];
    }
}

/// Applies the plane (Givens) rotation `(a_i, b_i) <- (c*a_i + s*b_i,
/// c*b_i - s*a_i)` to two equal-length slices (BLAS `drot`).
///
/// This is the inner loop of the delete-row Cholesky downdate: the two
/// slices are adjacent rows of the transposed working factor, so the loop
/// streams over contiguous memory and auto-vectorizes.
///
/// # Panics
/// Panics if the slices have different lengths.
#[inline]
pub fn rot(c: f64, s: f64, a: &mut [f64], b: &mut [f64]) {
    assert_eq!(a.len(), b.len(), "rot: length mismatch");
    for i in 0..a.len() {
        let ai = a[i];
        let bi = b[i];
        a[i] = c * ai + s * bi;
        b[i] = c * bi - s * ai;
    }
}

/// Euclidean norm.
#[inline]
pub fn norm2(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

/// Squared Euclidean distance between two points.
///
/// # Panics
/// Panics if the slices have different lengths.
#[inline]
pub fn dist2(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dist2: length mismatch");
    let mut acc = 0.0;
    for i in 0..a.len() {
        let d = a[i] - b[i];
        acc += d * d;
    }
    acc
}

/// Arithmetic mean. Returns 0 for an empty slice.
#[inline]
pub fn mean(a: &[f64]) -> f64 {
    if a.is_empty() {
        0.0
    } else {
        a.iter().sum::<f64>() / a.len() as f64
    }
}

/// Population variance. Returns 0 for slices with fewer than two elements.
#[inline]
pub fn variance(a: &[f64]) -> f64 {
    if a.len() < 2 {
        return 0.0;
    }
    let m = mean(a);
    a.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / a.len() as f64
}

/// Index of the minimum value (first occurrence). `None` when empty or all
/// values are NaN.
pub fn argmin(a: &[f64]) -> Option<usize> {
    let mut best: Option<(usize, f64)> = None;
    for (i, &v) in a.iter().enumerate() {
        if v.is_nan() {
            continue;
        }
        match best {
            Some((_, bv)) if bv <= v => {}
            _ => best = Some((i, v)),
        }
    }
    best.map(|(i, _)| i)
}

/// Index of the maximum value (first occurrence). `None` when empty or all
/// values are NaN.
pub fn argmax(a: &[f64]) -> Option<usize> {
    let mut best: Option<(usize, f64)> = None;
    for (i, &v) in a.iter().enumerate() {
        if v.is_nan() {
            continue;
        }
        match best {
            Some((_, bv)) if bv >= v => {}
            _ => best = Some((i, v)),
        }
    }
    best.map(|(i, _)| i)
}

/// Clamps `v` into `[lo, hi]`.
#[inline]
pub fn clamp(v: f64, lo: f64, hi: f64) -> f64 {
    v.max(lo).min(hi)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_known() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
        assert_eq!(dot(&[], &[]), 0.0);
    }

    #[test]
    fn axpy_known() {
        let mut y = vec![1.0, 1.0];
        axpy(2.0, &[3.0, -1.0], &mut y);
        assert_eq!(y, vec![7.0, -1.0]);
    }

    #[test]
    fn rot_is_an_isometry() {
        // A rotation by the (3,4,5) angle preserves norms and maps
        // (4, 3) onto (5, 0) in the first component pair.
        let (c, s) = (0.8, 0.6);
        let mut a = vec![4.0, 1.0];
        let mut b = vec![3.0, -2.0];
        let before = dot(&a, &a) + dot(&b, &b);
        rot(c, s, &mut a, &mut b);
        assert!((a[0] - 5.0).abs() < 1e-12);
        assert!(b[0].abs() < 1e-12);
        let after = dot(&a, &a) + dot(&b, &b);
        assert!((before - after).abs() < 1e-12);
    }

    #[test]
    fn norms_and_distances() {
        assert!((norm2(&[3.0, 4.0]) - 5.0).abs() < 1e-12);
        assert_eq!(dist2(&[0.0, 0.0], &[3.0, 4.0]), 25.0);
    }

    #[test]
    fn stats() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
        assert_eq!(variance(&[5.0]), 0.0);
        assert!((variance(&[1.0, 3.0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn argmin_argmax() {
        assert_eq!(argmin(&[3.0, 1.0, 2.0]), Some(1));
        assert_eq!(argmax(&[3.0, 1.0, 2.0]), Some(0));
        assert_eq!(argmin(&[]), None);
        assert_eq!(argmin(&[f64::NAN, 2.0]), Some(1));
        assert_eq!(argmax(&[f64::NAN, f64::NAN]), None);
    }

    #[test]
    fn clamp_bounds() {
        assert_eq!(clamp(5.0, 0.0, 1.0), 1.0);
        assert_eq!(clamp(-5.0, 0.0, 1.0), 0.0);
        assert_eq!(clamp(0.5, 0.0, 1.0), 0.5);
    }
}

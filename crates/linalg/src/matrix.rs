//! Row-major dense matrix.

use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense, row-major matrix of `f64`.
///
/// `Mat` is deliberately small: it provides exactly the operations the GP
/// layer needs (construction, element access, mat-vec / mat-mat products,
/// transpose, symmetry checks) and nothing else.
#[derive(Clone, PartialEq)]
pub struct Mat {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Mat {
    /// Creates a `rows x cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Mat { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Creates the `n x n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Mat::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds a matrix from a slice of row slices.
    ///
    /// # Panics
    /// Panics if the rows have inconsistent lengths.
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, |row| row.len());
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "inconsistent row length");
            data.extend_from_slice(row);
        }
        Mat { rows: r, cols: c, data }
    }

    /// Builds a matrix from a flat row-major vector.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "data length must equal rows*cols");
        Mat { rows, cols, data }
    }

    /// Builds a matrix by evaluating `f(i, j)` at every position.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Mat { rows, cols, data }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Returns `true` when the matrix is square.
    #[inline]
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Borrow of row `i` as a slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutable borrow of row `i`.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// The underlying row-major storage.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Splits the storage into two mutable row ranges: rows `[0, at)` and
    /// rows `[at, rows)`, each as a flat row-major slice.
    ///
    /// This is the split-borrow primitive behind the blocked triangular
    /// solves and the delete-row Cholesky downdate: already-final rows can
    /// be read while later rows are updated in place, with no row copies.
    ///
    /// # Panics
    /// Panics if `at > self.rows()`.
    #[inline]
    pub fn split_rows_mut(&mut self, at: usize) -> (&mut [f64], &mut [f64]) {
        assert!(at <= self.rows, "split_rows_mut: row index out of range");
        self.data.split_at_mut(at * self.cols)
    }

    /// Matrix-vector product `A * x`.
    ///
    /// # Panics
    /// Panics if `x.len() != self.cols()`.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols, "matvec dimension mismatch");
        let mut out = vec![0.0; self.rows];
        for (i, o) in out.iter_mut().enumerate() {
            *o = crate::vecops::dot(self.row(i), x);
        }
        out
    }

    /// Matrix-matrix product `A * B`.
    ///
    /// # Panics
    /// Panics if `self.cols() != b.rows()`.
    pub fn matmul(&self, b: &Mat) -> Mat {
        assert_eq!(self.cols, b.rows, "matmul dimension mismatch");
        let mut out = Mat::zeros(self.rows, b.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let aik = self[(i, k)];
                if aik == 0.0 {
                    continue;
                }
                let brow = b.row(k);
                let orow = out.row_mut(i);
                for (o, &bv) in orow.iter_mut().zip(brow) {
                    *o += aik * bv;
                }
            }
        }
        out
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Mat {
        Mat::from_fn(self.cols, self.rows, |i, j| self[(j, i)])
    }

    /// Returns `true` if the matrix is symmetric to within `tol`.
    pub fn is_symmetric(&self, tol: f64) -> bool {
        if !self.is_square() {
            return false;
        }
        for i in 0..self.rows {
            for j in (i + 1)..self.cols {
                if (self[(i, j)] - self[(j, i)]).abs() > tol {
                    return false;
                }
            }
        }
        true
    }

    /// Adds `value` to every diagonal entry (in place). Commonly used to add
    /// observation-noise variance or jitter to a kernel matrix.
    pub fn add_diagonal(&mut self, value: f64) {
        let n = self.rows.min(self.cols);
        for i in 0..n {
            self[(i, i)] += value;
        }
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }
}

impl Index<(usize, usize)> for Mat {
    type Output = f64;

    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Mat {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &mut self.data[i * self.cols + j]
    }
}

impl fmt::Debug for Mat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Mat {}x{} [", self.rows, self.cols)?;
        for i in 0..self.rows.min(8) {
            write!(f, "  [")?;
            for j in 0..self.cols.min(8) {
                write!(f, "{:10.4} ", self[(i, j)])?;
            }
            writeln!(f, "{}]", if self.cols > 8 { "…" } else { "" })?;
        }
        if self.rows > 8 {
            writeln!(f, "  …")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_identity() {
        let z = Mat::zeros(2, 3);
        assert_eq!(z.rows(), 2);
        assert_eq!(z.cols(), 3);
        assert!(z.as_slice().iter().all(|&v| v == 0.0));

        let i = Mat::identity(3);
        assert_eq!(i[(0, 0)], 1.0);
        assert_eq!(i[(1, 2)], 0.0);
        assert!(i.is_symmetric(0.0));
    }

    #[test]
    fn from_rows_roundtrip() {
        let m = Mat::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(m[(0, 1)], 2.0);
        assert_eq!(m[(1, 0)], 3.0);
        assert_eq!(m.row(1), &[3.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "inconsistent row length")]
    fn from_rows_rejects_ragged() {
        let _ = Mat::from_rows(&[&[1.0, 2.0], &[3.0]]);
    }

    #[test]
    fn split_rows_mut_partitions_storage() {
        let mut m = Mat::from_fn(4, 3, |i, j| (i * 3 + j) as f64);
        let (top, bottom) = m.split_rows_mut(2);
        assert_eq!(top.len(), 6);
        assert_eq!(bottom.len(), 6);
        assert_eq!(top[5], 5.0);
        assert_eq!(bottom[0], 6.0);
        bottom[0] = -1.0;
        assert_eq!(m[(2, 0)], -1.0);
        // Degenerate splits are legal.
        assert_eq!(m.split_rows_mut(0).0.len(), 0);
        assert_eq!(m.split_rows_mut(4).1.len(), 0);
    }

    #[test]
    fn matvec_matches_hand_computation() {
        let m = Mat::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let y = m.matvec(&[1.0, -1.0]);
        assert_eq!(y, vec![-1.0, -1.0]);
    }

    #[test]
    fn matmul_identity_is_noop() {
        let m = Mat::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let i = Mat::identity(2);
        assert_eq!(m.matmul(&i), m);
        assert_eq!(i.matmul(&m), m);
    }

    #[test]
    fn matmul_known_product() {
        let a = Mat::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let b = Mat::from_rows(&[&[7.0, 8.0], &[9.0, 10.0], &[11.0, 12.0]]);
        let c = a.matmul(&b);
        assert_eq!(c.rows(), 2);
        assert_eq!(c.cols(), 2);
        assert_eq!(c[(0, 0)], 58.0);
        assert_eq!(c[(0, 1)], 64.0);
        assert_eq!(c[(1, 0)], 139.0);
        assert_eq!(c[(1, 1)], 154.0);
    }

    #[test]
    fn transpose_involution() {
        let m = Mat::from_fn(3, 5, |i, j| (i * 10 + j) as f64);
        assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn symmetry_detection() {
        let mut m = Mat::from_rows(&[&[1.0, 2.0], &[2.0, 5.0]]);
        assert!(m.is_symmetric(0.0));
        m[(0, 1)] = 2.1;
        assert!(!m.is_symmetric(1e-6));
        assert!(m.is_symmetric(0.2));
    }

    #[test]
    fn add_diagonal_only_touches_diagonal() {
        let mut m = Mat::zeros(2, 2);
        m.add_diagonal(3.0);
        assert_eq!(m[(0, 0)], 3.0);
        assert_eq!(m[(1, 1)], 3.0);
        assert_eq!(m[(0, 1)], 0.0);
    }

    #[test]
    fn frobenius_norm_known_value() {
        let m = Mat::from_rows(&[&[3.0, 0.0], &[0.0, 4.0]]);
        assert!((m.frobenius_norm() - 5.0).abs() < 1e-12);
    }
}

//! Forward and backward substitution against triangular factors.

use crate::Mat;

/// Solves `L x = b` where `L` is lower-triangular (forward substitution).
///
/// Only the lower triangle of `l` is read.
///
/// # Panics
/// Panics if `l` is not square or `b.len() != l.rows()`.
pub fn solve_lower(l: &Mat, b: &[f64]) -> Vec<f64> {
    assert!(l.is_square(), "solve_lower: matrix must be square");
    assert_eq!(b.len(), l.rows(), "solve_lower: rhs length mismatch");
    let n = l.rows();
    let mut x = b.to_vec();
    for i in 0..n {
        let row = l.row(i);
        let mut acc = x[i];
        for j in 0..i {
            acc -= row[j] * x[j];
        }
        x[i] = acc / row[i];
    }
    x
}

/// Solves `L^T x = b` where `L` is lower-triangular (backward substitution
/// against the transpose).
///
/// # Panics
/// Panics if `l` is not square or `b.len() != l.rows()`.
pub fn solve_upper(l: &Mat, b: &[f64]) -> Vec<f64> {
    assert!(l.is_square(), "solve_upper: matrix must be square");
    assert_eq!(b.len(), l.rows(), "solve_upper: rhs length mismatch");
    let n = l.rows();
    let mut x = b.to_vec();
    for i in (0..n).rev() {
        let mut acc = x[i];
        // Traverse column i of L below the diagonal == row i of L^T right of diag.
        for j in (i + 1)..n {
            acc -= l[(j, i)] * x[j];
        }
        x[i] = acc / l[(i, i)];
    }
    x
}

/// Row-panel size of the blocked matrix-RHS triangular solves. Within a
/// panel the substitution is the classic scalar recurrence; across panels
/// the update is a dense rank-`SOLVE_BLOCK` product over contiguous rows,
/// which is where the bulk of the `O(n^2 m)` arithmetic lands and where
/// the compiler can vectorize freely.
const SOLVE_BLOCK: usize = 32;

/// Solves `L X = B` where `B` is `n x m` (forward substitution with a
/// matrix right-hand side). Returns an `n x m` matrix.
///
/// This is the hot path of batched GP posterior evaluation: the rows are
/// processed in panels of `SOLVE_BLOCK` rows, with split borrows
/// ([`Mat::split_rows_mut`]) separating already-final rows from the rows
/// being updated so the inner loops are clone-free [`crate::vecops::axpy`]
/// sweeps over whole rows. The accumulation order (ascending `j`, then one
/// division by the diagonal) is identical to the scalar recurrence, so
/// results are bit-for-bit the same as column-wise vector solves.
///
/// # Panics
/// Panics if `l` is not square or `b.rows() != l.rows()`.
pub fn solve_lower_mat(l: &Mat, b: &Mat) -> Mat {
    assert!(l.is_square(), "solve_lower_mat: matrix must be square");
    assert_eq!(b.rows(), l.rows(), "solve_lower_mat: rhs rows mismatch");
    let n = l.rows();
    let m = b.cols();
    let mut x = b.clone();
    let mut bs = 0;
    while bs < n {
        let be = (bs + SOLVE_BLOCK).min(n);
        // Panel update: X[bs..be] -= L[bs..be, 0..bs] * X[0..bs]. Every
        // referenced X row is final, so this is a dense block product.
        let (done, active) = x.split_rows_mut(bs);
        for i in bs..be {
            let lrow = &l.row(i)[..bs];
            let xrow = &mut active[(i - bs) * m..(i - bs + 1) * m];
            for (j, &lij) in lrow.iter().enumerate() {
                if lij == 0.0 {
                    continue;
                }
                crate::vecops::axpy(-lij, &done[j * m..(j + 1) * m], xrow);
            }
        }
        // Diagonal block: forward substitution within the panel.
        for i in bs..be {
            let (done, active) = x.split_rows_mut(i);
            let xrow = &mut active[..m];
            let lrow = l.row(i);
            for j in bs..i {
                let lij = lrow[j];
                if lij == 0.0 {
                    continue;
                }
                crate::vecops::axpy(-lij, &done[j * m..(j + 1) * m], xrow);
            }
            let diag = lrow[i];
            for v in xrow.iter_mut() {
                *v /= diag;
            }
        }
        bs = be;
    }
    x
}

/// Solves `L^T X = B` where `B` is `n x m` (backward substitution against
/// the transpose, with a matrix right-hand side). Returns an `n x m`
/// matrix. Blocked like [`solve_lower_mat`], sweeping panels bottom-up.
///
/// # Panics
/// Panics if `l` is not square or `b.rows() != l.rows()`.
pub fn solve_upper_mat(l: &Mat, b: &Mat) -> Mat {
    assert!(l.is_square(), "solve_upper_mat: matrix must be square");
    assert_eq!(b.rows(), l.rows(), "solve_upper_mat: rhs rows mismatch");
    let n = l.rows();
    let m = b.cols();
    let mut x = b.clone();
    let mut be = n;
    while be > 0 {
        let bs = be.saturating_sub(SOLVE_BLOCK);
        // Panel update: X[bs..be] -= L[be.., bs..be]^T * X[be..], reading
        // column i of L below the diagonal as row i of L^T.
        {
            let (head, done) = x.split_rows_mut(be);
            let active = &mut head[bs * m..];
            for j in be..n {
                let lrow = l.row(j);
                let xj = &done[(j - be) * m..(j - be + 1) * m];
                for i in bs..be {
                    let lji = lrow[i];
                    if lji == 0.0 {
                        continue;
                    }
                    crate::vecops::axpy(-lji, xj, &mut active[(i - bs) * m..(i - bs + 1) * m]);
                }
            }
        }
        // Diagonal block: backward substitution within the panel.
        for i in (bs..be).rev() {
            let (head, rest) = x.split_rows_mut(i + 1);
            let xrow = &mut head[i * m..];
            for j in (i + 1)..be {
                let lji = l[(j, i)];
                if lji == 0.0 {
                    continue;
                }
                crate::vecops::axpy(-lji, &rest[(j - i - 1) * m..(j - i) * m], xrow);
            }
            let diag = l[(i, i)];
            for v in xrow.iter_mut() {
                *v /= diag;
            }
        }
        be = bs;
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Mat;

    fn lower3() -> Mat {
        Mat::from_rows(&[&[2.0, 0.0, 0.0], &[1.0, 3.0, 0.0], &[4.0, 5.0, 6.0]])
    }

    #[test]
    fn forward_substitution() {
        let l = lower3();
        let x = solve_lower(&l, &[2.0, 5.0, 32.0]);
        // Verify by multiplying back.
        let b = l.matvec(&x);
        for (bi, want) in b.iter().zip([2.0, 5.0, 32.0]) {
            assert!((bi - want).abs() < 1e-12);
        }
    }

    #[test]
    fn backward_substitution() {
        let l = lower3();
        let x = solve_upper(&l, &[1.0, 2.0, 3.0]);
        let lt = l.transpose();
        let b = lt.matvec(&x);
        for (bi, want) in b.iter().zip([1.0, 2.0, 3.0]) {
            assert!((bi - want).abs() < 1e-12);
        }
    }

    #[test]
    fn matrix_rhs_matches_columnwise_vector_solves() {
        let l = lower3();
        let b = Mat::from_rows(&[&[1.0, 0.5], &[2.0, -1.0], &[3.0, 2.0]]);
        let x = solve_lower_mat(&l, &b);
        for col in 0..2 {
            let bcol: Vec<f64> = (0..3).map(|r| b[(r, col)]).collect();
            let xcol = solve_lower(&l, &bcol);
            for r in 0..3 {
                assert!((x[(r, col)] - xcol[r]).abs() < 1e-12, "mismatch at ({r},{col})");
            }
        }
    }

    #[test]
    fn identity_solves_are_identity() {
        let i = Mat::identity(4);
        let b = vec![1.0, 2.0, 3.0, 4.0];
        assert_eq!(solve_lower(&i, &b), b);
        assert_eq!(solve_upper(&i, &b), b);
    }

    #[test]
    fn upper_matrix_rhs_matches_columnwise_vector_solves() {
        let l = lower3();
        let b = Mat::from_rows(&[&[1.0, 0.5], &[2.0, -1.0], &[3.0, 2.0]]);
        let x = solve_upper_mat(&l, &b);
        for col in 0..2 {
            let bcol: Vec<f64> = (0..3).map(|r| b[(r, col)]).collect();
            let xcol = solve_upper(&l, &bcol);
            for r in 0..3 {
                assert!((x[(r, col)] - xcol[r]).abs() < 1e-12, "mismatch at ({r},{col})");
            }
        }
    }

    /// The blocked path must agree with the scalar recurrence when `n`
    /// spans several panels (exercises the panel update, not just the
    /// diagonal block).
    #[test]
    fn blocked_solves_match_vector_solves_across_panels() {
        let n = 83; // > 2 * SOLVE_BLOCK, not a multiple of the block size
        let l = Mat::from_fn(n, n, |i, j| {
            if j > i {
                0.0
            } else if i == j {
                2.0 + (i as f64) * 0.01
            } else {
                ((i * 7 + j * 3) % 11) as f64 * 0.1 - 0.5
            }
        });
        let m = 5;
        let b = Mat::from_fn(n, m, |i, j| ((i + 2 * j) % 13) as f64 * 0.25 - 1.0);
        let lo = solve_lower_mat(&l, &b);
        let up = solve_upper_mat(&l, &b);
        for col in 0..m {
            let bcol: Vec<f64> = (0..n).map(|r| b[(r, col)]).collect();
            let wlo = solve_lower(&l, &bcol);
            let wup = solve_upper(&l, &bcol);
            for r in 0..n {
                assert_eq!(lo[(r, col)], wlo[r], "forward bit mismatch at ({r},{col})");
                assert!((up[(r, col)] - wup[r]).abs() < 1e-10, "backward mismatch at ({r},{col})");
            }
        }
    }
}

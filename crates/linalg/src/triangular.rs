//! Forward and backward substitution against triangular factors.

use crate::Mat;

/// Solves `L x = b` where `L` is lower-triangular (forward substitution).
///
/// Only the lower triangle of `l` is read.
///
/// # Panics
/// Panics if `l` is not square or `b.len() != l.rows()`.
pub fn solve_lower(l: &Mat, b: &[f64]) -> Vec<f64> {
    assert!(l.is_square(), "solve_lower: matrix must be square");
    assert_eq!(b.len(), l.rows(), "solve_lower: rhs length mismatch");
    let n = l.rows();
    let mut x = b.to_vec();
    for i in 0..n {
        let row = l.row(i);
        let mut acc = x[i];
        for j in 0..i {
            acc -= row[j] * x[j];
        }
        x[i] = acc / row[i];
    }
    x
}

/// Solves `L^T x = b` where `L` is lower-triangular (backward substitution
/// against the transpose).
///
/// # Panics
/// Panics if `l` is not square or `b.len() != l.rows()`.
pub fn solve_upper(l: &Mat, b: &[f64]) -> Vec<f64> {
    assert!(l.is_square(), "solve_upper: matrix must be square");
    assert_eq!(b.len(), l.rows(), "solve_upper: rhs length mismatch");
    let n = l.rows();
    let mut x = b.to_vec();
    for i in (0..n).rev() {
        let mut acc = x[i];
        // Traverse column i of L below the diagonal == row i of L^T right of diag.
        for j in (i + 1)..n {
            acc -= l[(j, i)] * x[j];
        }
        x[i] = acc / l[(i, i)];
    }
    x
}

/// Solves `L X = B` column-wise where `B` is `n x m` (forward substitution
/// with a matrix right-hand side). Returns an `n x m` matrix.
///
/// This is the hot path of batched GP posterior variance evaluation, so the
/// inner loops run across whole rows of `B` to stay cache-friendly.
///
/// # Panics
/// Panics if `l` is not square or `b.rows() != l.rows()`.
pub fn solve_lower_mat(l: &Mat, b: &Mat) -> Mat {
    assert!(l.is_square(), "solve_lower_mat: matrix must be square");
    assert_eq!(b.rows(), l.rows(), "solve_lower_mat: rhs rows mismatch");
    let n = l.rows();
    let m = b.cols();
    let mut x = b.clone();
    let mut acc = vec![0.0; m];
    for i in 0..n {
        acc.copy_from_slice(x.row(i));
        // acc -= sum_{j<i} L[i][j] * x.row(j); rows j < i are final.
        for j in 0..i {
            let lij = l[(i, j)];
            if lij == 0.0 {
                continue;
            }
            // Clone-free would need split borrows; the row copy into a local
            // is cheap relative to the O(n^2 m) arithmetic and keeps the
            // code entirely safe.
            let xj: &[f64] = x.row(j);
            // acc -= lij * xj, written openly so the borrow of x.row(j)
            // ends before we write acc back below.
            for (a, &v) in acc.iter_mut().zip(xj) {
                *a -= lij * v;
            }
        }
        let diag = l[(i, i)];
        let row = x.row_mut(i);
        for (r, a) in row.iter_mut().zip(&acc) {
            *r = a / diag;
        }
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Mat;

    fn lower3() -> Mat {
        Mat::from_rows(&[&[2.0, 0.0, 0.0], &[1.0, 3.0, 0.0], &[4.0, 5.0, 6.0]])
    }

    #[test]
    fn forward_substitution() {
        let l = lower3();
        let x = solve_lower(&l, &[2.0, 5.0, 32.0]);
        // Verify by multiplying back.
        let b = l.matvec(&x);
        for (bi, want) in b.iter().zip([2.0, 5.0, 32.0]) {
            assert!((bi - want).abs() < 1e-12);
        }
    }

    #[test]
    fn backward_substitution() {
        let l = lower3();
        let x = solve_upper(&l, &[1.0, 2.0, 3.0]);
        let lt = l.transpose();
        let b = lt.matvec(&x);
        for (bi, want) in b.iter().zip([1.0, 2.0, 3.0]) {
            assert!((bi - want).abs() < 1e-12);
        }
    }

    #[test]
    fn matrix_rhs_matches_columnwise_vector_solves() {
        let l = lower3();
        let b = Mat::from_rows(&[&[1.0, 0.5], &[2.0, -1.0], &[3.0, 2.0]]);
        let x = solve_lower_mat(&l, &b);
        for col in 0..2 {
            let bcol: Vec<f64> = (0..3).map(|r| b[(r, col)]).collect();
            let xcol = solve_lower(&l, &bcol);
            for r in 0..3 {
                assert!((x[(r, col)] - xcol[r]).abs() < 1e-12, "mismatch at ({r},{col})");
            }
        }
    }

    #[test]
    fn identity_solves_are_identity() {
        let i = Mat::identity(4);
        let b = vec![1.0, 2.0, 3.0, 4.0];
        assert_eq!(solve_lower(&i, &b), b);
        assert_eq!(solve_upper(&i, &b), b);
    }
}

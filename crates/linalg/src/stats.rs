//! Shared statistical helpers: Gaussian sampling and running moments.
//!
//! Several crates in the workspace (the testbed's observation noise, the
//! neural-network initializers, the media detector model) need standard
//! normal variates; the approved dependency set does not include
//! `rand_distr`, so a Box–Muller transform lives here once.

use rand::{Rng, RngExt};

/// Draws one standard-normal variate via the Box–Muller transform.
///
/// Uses the polar-free (trigonometric) form; two uniforms per call, one
/// output. Deterministic given the RNG state.
pub fn normal01<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // Guard against log(0).
    let u1: f64 = loop {
        let v: f64 = rng.random();
        if v > f64::MIN_POSITIVE {
            break v;
        }
    };
    let u2: f64 = rng.random();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Draws a normal variate with the given mean and standard deviation.
///
/// # Panics
/// Panics if `std` is negative or non-finite.
pub fn normal<R: Rng + ?Sized>(rng: &mut R, mean: f64, std: f64) -> f64 {
    assert!(std >= 0.0 && std.is_finite(), "std must be non-negative and finite");
    mean + std * normal01(rng)
}

/// Welford's online algorithm for mean and variance.
///
/// Numerically stable single-pass moments; used by the testbed's
/// per-period KPI aggregation and by the benches' series summaries.
#[derive(Debug, Clone, Default)]
pub struct Welford {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Welford {
    /// A fresh accumulator.
    pub fn new() -> Self {
        Welford { n: 0, mean: 0.0, m2: 0.0, min: f64::INFINITY, max: f64::NEG_INFINITY }
    }

    /// Feeds one sample.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of samples seen.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0 with fewer than two samples).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Population standard deviation.
    pub fn std(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest sample seen (`+inf` when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest sample seen (`-inf` when empty).
    pub fn max(&self) -> f64 {
        self.max
    }
}

/// Percentile of a sample (linear interpolation between closest ranks).
///
/// `q` in `[0, 1]`. Returns `NaN` for an empty slice. The input does not
/// need to be sorted; a sorted copy is made internally.
pub fn percentile(samples: &[f64], q: f64) -> f64 {
    if samples.is_empty() {
        return f64::NAN;
    }
    let mut v: Vec<f64> = samples.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let q = q.clamp(0.0, 1.0);
    let pos = q * (v.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        v[lo]
    } else {
        let w = pos - lo as f64;
        v[lo] * (1.0 - w) + v[hi] * w
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn normal01_moments() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut w = Welford::new();
        for _ in 0..20_000 {
            w.push(normal01(&mut rng));
        }
        assert!(w.mean().abs() < 0.03, "mean {}", w.mean());
        assert!((w.std() - 1.0).abs() < 0.03, "std {}", w.std());
    }

    #[test]
    fn normal_scales_and_shifts() {
        let mut rng = StdRng::seed_from_u64(8);
        let mut w = Welford::new();
        for _ in 0..20_000 {
            w.push(normal(&mut rng, 10.0, 2.0));
        }
        assert!((w.mean() - 10.0).abs() < 0.1);
        assert!((w.std() - 2.0).abs() < 0.1);
    }

    #[test]
    fn normal_zero_std_is_deterministic() {
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(normal(&mut rng, 5.0, 0.0), 5.0);
    }

    #[test]
    fn welford_known_values() {
        let mut w = Welford::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            w.push(x);
        }
        assert_eq!(w.count(), 8);
        assert!((w.mean() - 5.0).abs() < 1e-12);
        assert!((w.variance() - 4.0).abs() < 1e-12);
        assert_eq!(w.min(), 2.0);
        assert_eq!(w.max(), 9.0);
    }

    #[test]
    fn welford_empty_and_single() {
        let mut w = Welford::new();
        assert_eq!(w.mean(), 0.0);
        assert_eq!(w.variance(), 0.0);
        w.push(3.0);
        assert_eq!(w.mean(), 3.0);
        assert_eq!(w.variance(), 0.0);
    }

    #[test]
    fn percentile_interpolates() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&v, 1.0), 4.0);
        assert!((percentile(&v, 0.5) - 2.5).abs() < 1e-12);
        assert!(percentile(&[], 0.5).is_nan());
        // Unsorted input.
        assert_eq!(percentile(&[4.0, 1.0, 3.0, 2.0], 1.0), 4.0);
    }
}

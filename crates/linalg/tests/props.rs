//! Property-based tests of the linear-algebra substrate.

use edgebol_linalg::{solve_lower, solve_lower_mat, solve_upper, Cholesky, Mat};
use proptest::prelude::*;

/// Strategy: a random SPD matrix `G G^T + c I` of size n.
fn spd(n: usize) -> impl Strategy<Value = Mat> {
    proptest::collection::vec(-1.0f64..1.0, n * n).prop_map(move |vals| {
        let g = Mat::from_vec(n, n, vals);
        let mut a = g.matmul(&g.transpose());
        a.add_diagonal(n as f64 * 0.5 + 0.5);
        a
    })
}

proptest! {
    /// `L L^T` reconstructs `A` for random SPD matrices of several sizes.
    #[test]
    fn factor_reconstructs(a in spd(6)) {
        let ch = Cholesky::factor(&a).unwrap();
        let r = ch.reconstruct();
        for i in 0..6 {
            for j in 0..6 {
                prop_assert!((a[(i, j)] - r[(i, j)]).abs() < 1e-8);
            }
        }
    }

    /// Incremental appends equal the batch factorization.
    #[test]
    fn incremental_append_consistency(a in spd(7)) {
        let batch = Cholesky::factor(&a).unwrap();
        let mut inc = Cholesky::empty();
        for i in 0..7 {
            let cross: Vec<f64> = (0..i).map(|j| a[(i, j)]).collect();
            inc.append(&cross, a[(i, i)]).unwrap();
        }
        for i in 0..7 {
            for j in 0..=i {
                prop_assert!(
                    (inc.factor_l()[(i, j)] - batch.factor_l()[(i, j)]).abs() < 1e-8
                );
            }
        }
    }

    /// Triangular solves invert their matrices.
    #[test]
    fn triangular_solves_invert(a in spd(5), b in proptest::collection::vec(-5.0f64..5.0, 5)) {
        let ch = Cholesky::factor(&a).unwrap();
        let l = ch.factor_l();
        let y = solve_lower(l, &b);
        // L y = b
        let back = Mat::from_fn(5, 5, |i, j| if j <= i { l[(i, j)] } else { 0.0 }).matvec(&y);
        for (got, want) in back.iter().zip(&b) {
            prop_assert!((got - want).abs() < 1e-8);
        }
        let x = solve_upper(l, &b);
        let back2 = Mat::from_fn(5, 5, |i, j| if i <= j { l[(j, i)] } else { 0.0 }).matvec(&x);
        for (got, want) in back2.iter().zip(&b) {
            prop_assert!((got - want).abs() < 1e-8);
        }
    }

    /// The delete-row downdate equals factoring the submatrix from
    /// scratch, for every deletable index of a random SPD matrix.
    #[test]
    fn delete_row_equals_scratch_factor(a in spd(7), idx in 0usize..7) {
        let full = Cholesky::factor(&a).unwrap();
        let down = full.delete_row(idx).unwrap();
        let sub = Mat::from_fn(6, 6, |i, j| {
            let si = if i < idx { i } else { i + 1 };
            let sj = if j < idx { j } else { j + 1 };
            a[(si, sj)]
        });
        let scratch = Cholesky::factor(&sub).unwrap();
        for i in 0..6 {
            for j in 0..=i {
                prop_assert!(
                    (down.factor_l()[(i, j)] - scratch.factor_l()[(i, j)]).abs() < 1e-8,
                    "idx {} mismatch at ({}, {})", idx, i, j
                );
            }
        }
    }

    /// Sliding-window chain: delete row 0 then append a bordered row —
    /// the GP eviction pattern — equals the from-scratch factor of the
    /// shifted window.
    #[test]
    fn delete_then_append_equals_scratch(a in spd(8)) {
        let window = Mat::from_fn(7, 7, |i, j| a[(i, j)]);
        let mut ch = Cholesky::factor(&window).unwrap();
        ch = ch.delete_row(0).unwrap();
        let cross: Vec<f64> = (1..7).map(|i| a[(7, i)]).collect();
        ch.append(&cross, a[(7, 7)]).unwrap();
        let shifted = Mat::from_fn(7, 7, |i, j| a[(i + 1, j + 1)]);
        let scratch = Cholesky::factor(&shifted).unwrap();
        for i in 0..7 {
            for j in 0..=i {
                prop_assert!(
                    (ch.factor_l()[(i, j)] - scratch.factor_l()[(i, j)]).abs() < 1e-8
                );
            }
        }
    }

    /// Matrix-RHS forward substitution equals column-wise vector solves.
    #[test]
    fn matrix_rhs_equals_columnwise(
        a in spd(5),
        rhs in proptest::collection::vec(-3.0f64..3.0, 15),
    ) {
        let ch = Cholesky::factor(&a).unwrap();
        let b = Mat::from_vec(5, 3, rhs);
        let x = solve_lower_mat(ch.factor_l(), &b);
        for col in 0..3 {
            let bcol: Vec<f64> = (0..5).map(|r| b[(r, col)]).collect();
            let want = solve_lower(ch.factor_l(), &bcol);
            for r in 0..5 {
                prop_assert!((x[(r, col)] - want[r]).abs() < 1e-9);
            }
        }
    }

    /// log det via Cholesky is consistent with the product of eigenvalue
    /// surrogates (diagonal squares), and positive-definiteness holds.
    #[test]
    fn log_det_finite_and_consistent(a in spd(6)) {
        let ch = Cholesky::factor(&a).unwrap();
        let ld = ch.log_det();
        prop_assert!(ld.is_finite());
        // det(A) > 0 for SPD.
        let manual: f64 = (0..6).map(|i| ch.factor_l()[(i, i)].powi(2).ln()).sum();
        prop_assert!((ld - manual).abs() < 1e-9);
    }

    /// Mat transpose/matmul identities: (AB)^T = B^T A^T.
    #[test]
    fn transpose_of_product(
        av in proptest::collection::vec(-2.0f64..2.0, 12),
        bv in proptest::collection::vec(-2.0f64..2.0, 12),
    ) {
        let a = Mat::from_vec(3, 4, av);
        let b = Mat::from_vec(4, 3, bv);
        let left = a.matmul(&b).transpose();
        let right = b.transpose().matmul(&a.transpose());
        for i in 0..3 {
            for j in 0..3 {
                prop_assert!((left[(i, j)] - right[(i, j)]).abs() < 1e-10);
            }
        }
    }
}

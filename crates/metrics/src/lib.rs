//! Zero-dependency observability for the EdgeBOL reproduction.
//!
//! The paper's whole pitch is closing a *measurement* loop — the
//! orchestrator steers energy and delay from observed KPIs — so the
//! reproduction exports the same kind of telemetry an O-RAN energy-saving
//! rApp would: per-period step latency, per-stage control-plane failures,
//! injected-fault counts, runner utilization. This crate is the registry
//! those layers record into. It has **no dependencies** (std only) and
//! three metric kinds:
//!
//! * [`Counter`] — a monotonically increasing `u64` ([`Counter::inc`] /
//!   [`Counter::add`]).
//! * [`Gauge`] — a last-write-wins `f64` ([`Gauge::set`] / [`Gauge::add`]).
//! * [`Histogram`] — fixed upper-bound buckets plus a running count and
//!   sum ([`Histogram::observe`]); bucket layout is chosen at
//!   registration and never reallocated.
//!
//! All three are backed by [`std::sync::atomic::AtomicU64`] cells, so
//! handles are `Send + Sync`, recording is lock-free, and the registry
//! can be shared across the parallel experiment runner's worker threads.
//!
//! # Naming scheme
//!
//! Metric names follow `edgebol_<layer>_<name>` with Prometheus-style
//! unit suffixes (`_total`, `_seconds`, `_bytes`) and optional labels
//! rendered into the name (`edgebol_oran_frames_total{dir="tx",link="A1"}`
//! — see [`Registry::counter_with`]). DESIGN.md §8 documents the full
//! scheme and every metric the workspace exports.
//!
//! # Disabled registries
//!
//! [`Registry::default`] (= [`Registry::disabled`]) is a null registry:
//! every handle it returns is a no-op whose record path is a single
//! branch on an `Option`, no allocation, no clock read ([`Stopwatch`]
//! skips [`std::time::Instant::now`] entirely). Instrumented layers
//! therefore take a `Registry` unconditionally and cost nothing unless
//! the caller opted in — the argument is spelled out in DESIGN.md §8 and
//! pinned by `tests/metrics.rs`.
//!
//! # Example
//!
//! ```
//! use edgebol_metrics::Registry;
//!
//! let reg = Registry::new();
//! reg.counter("edgebol_core_periods_total").inc();
//! let h = reg.histogram("edgebol_core_step_latency_seconds", &[0.01, 0.1, 1.0]);
//! h.observe(0.042);
//!
//! let snap = reg.snapshot();
//! assert_eq!(snap.counter("edgebol_core_periods_total"), Some(1));
//! assert!(snap.render_prometheus().contains("edgebol_core_periods_total 1"));
//! ```

#![deny(missing_docs)]

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::Instant;

/// Atomic add of an `f64` stored as its bit pattern in an [`AtomicU64`]
/// (CAS loop; Relaxed suffices — metric cells carry no cross-cell
/// ordering obligations).
fn atomic_f64_add(cell: &AtomicU64, v: f64) {
    let mut cur = cell.load(Ordering::Relaxed);
    loop {
        let next = (f64::from_bits(cur) + v).to_bits();
        match cell.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(seen) => cur = seen,
        }
    }
}

/// One registered histogram: cumulative-free per-bucket counts (bucket
/// `i` counts observations in `(bounds[i-1], bounds[i]]`, with a final
/// overflow bucket), plus total count and sum.
#[derive(Debug)]
struct HistogramCore {
    /// Finite, strictly increasing upper bounds; observations above the
    /// last bound land in the overflow (`+Inf`) bucket.
    bounds: Vec<f64>,
    /// `bounds.len() + 1` cells; the last is the overflow bucket.
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    /// Sum of observed values, stored as `f64` bits.
    sum_bits: AtomicU64,
}

impl HistogramCore {
    fn new(bounds: &[f64]) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bucket bound");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]) && bounds.iter().all(|b| b.is_finite()),
            "histogram bounds must be finite and strictly increasing: {bounds:?}"
        );
        HistogramCore {
            bounds: bounds.to_vec(),
            buckets: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0),
        }
    }

    fn observe(&self, v: f64) {
        let idx = self.bounds.iter().position(|&b| v <= b).unwrap_or(self.bounds.len());
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        atomic_f64_add(&self.sum_bits, v);
    }

    fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum_bits.store(0, Ordering::Relaxed);
    }
}

/// One registered metric cell.
#[derive(Debug)]
enum Slot {
    Counter(Arc<AtomicU64>),
    /// Gauge value stored as `f64` bits.
    Gauge(Arc<AtomicU64>),
    Histogram(Arc<HistogramCore>),
}

#[derive(Debug, Default)]
struct Inner {
    /// Full series key (name + rendered labels) → cell. A `BTreeMap` so
    /// snapshots iterate in one deterministic order.
    slots: Mutex<BTreeMap<String, Slot>>,
    /// Family base name → `# HELP` text ([`Registry::describe`]).
    help: Mutex<BTreeMap<String, String>>,
}

/// A named set of metrics. Cloning is cheap and shares the underlying
/// cells; the registry is `Send + Sync` and recording through its
/// handles is lock-free (registration takes a short-lived mutex, so
/// resolve handles once on hot paths).
///
/// ```
/// use edgebol_metrics::Registry;
///
/// let reg = Registry::new();
/// reg.counter("edgebol_core_periods_total").inc();
/// reg.counter_with("edgebol_core_degraded_total", &[("stage", "A1 put")]).add(2);
/// reg.gauge("edgebol_bench_worker_threads").set(4.0);
///
/// let snap = reg.snapshot();
/// assert_eq!(snap.counter("edgebol_core_periods_total"), Some(1));
/// assert_eq!(snap.counter("edgebol_core_degraded_total{stage=\"A1 put\"}"), Some(2));
/// assert_eq!(snap.gauge("edgebol_bench_worker_threads"), Some(4.0));
/// ```
#[derive(Debug, Clone)]
pub struct Registry {
    /// `None` = disabled: every handle is a no-op.
    inner: Option<Arc<Inner>>,
}

impl Default for Registry {
    /// The disabled registry — see [`Registry::disabled`].
    fn default() -> Self {
        Registry::disabled()
    }
}

/// Escapes a label value for the Prometheus exposition format: the
/// backslash first (so later escapes don't double up), then the quote
/// that would close the value, then raw newlines (which would break the
/// line-oriented format).
fn escape_label_value(v: &str) -> String {
    v.replace('\\', "\\\\").replace('"', "\\\"").replace('\n', "\\n")
}

/// Renders `name{k="v",...}` (or just `name` without labels). Label
/// values are escaped for the Prometheus exposition format
/// ([`escape_label_value`]).
fn series_key(name: &str, labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return name.to_string();
    }
    let mut out = String::with_capacity(name.len() + 16 * labels.len());
    out.push_str(name);
    out.push('{');
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{k}=\"{}\"", escape_label_value(v));
    }
    out.push('}');
    out
}

impl Registry {
    /// Creates an enabled, empty registry.
    pub fn new() -> Self {
        Registry { inner: Some(Arc::new(Inner::default())) }
    }

    /// Creates a disabled registry: every handle it returns records
    /// nothing, [`Registry::snapshot`] is empty, and the record path is
    /// a single branch (no allocation, no lock, no clock read).
    pub fn disabled() -> Self {
        Registry { inner: None }
    }

    /// Whether this registry actually records.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Attaches `# HELP` text to the metric family `name` (the base
    /// name, without labels — for a histogram, the name *without* the
    /// `_bucket`/`_sum`/`_count` suffixes). The text is emitted once
    /// per family by [`Snapshot::render_prometheus`], ahead of the
    /// family's `# TYPE` line. The first description for a family wins;
    /// describing is a no-op on a disabled registry.
    pub fn describe(&self, name: &str, help: &str) {
        let Some(inner) = &self.inner else { return };
        let mut map = inner.help.lock().unwrap_or_else(PoisonError::into_inner);
        map.entry(name.to_string()).or_insert_with(|| help.to_string());
    }

    fn slot<T>(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        make: impl FnOnce() -> Slot,
        pick: impl FnOnce(&Slot) -> Option<T>,
    ) -> Option<T> {
        let inner = self.inner.as_ref()?;
        let key = series_key(name, labels);
        let mut slots = inner.slots.lock().unwrap_or_else(PoisonError::into_inner);
        let slot = slots.entry(key).or_insert_with(make);
        Some(pick(slot).unwrap_or_else(|| {
            panic!("metric {:?} already registered with a different kind", series_key(name, labels))
        }))
    }

    /// Returns (registering on first use) the counter `name`.
    ///
    /// # Panics
    /// If `name` is already registered as a gauge or histogram.
    pub fn counter(&self, name: &str) -> Counter {
        self.counter_with(name, &[])
    }

    /// Returns (registering on first use) the counter `name{labels}`.
    /// Labels become part of the series key verbatim, in the given
    /// order — use one consistent order per metric.
    ///
    /// # Panics
    /// If the series is already registered with a different kind.
    pub fn counter_with(&self, name: &str, labels: &[(&str, &str)]) -> Counter {
        Counter(self.slot(
            name,
            labels,
            || Slot::Counter(Arc::new(AtomicU64::new(0))),
            |s| match s {
                Slot::Counter(c) => Some(c.clone()),
                _ => None,
            },
        ))
    }

    /// Returns (registering on first use) the gauge `name`.
    ///
    /// # Panics
    /// If the series is already registered with a different kind.
    pub fn gauge(&self, name: &str) -> Gauge {
        self.gauge_with(name, &[])
    }

    /// Returns (registering on first use) the gauge `name{labels}`.
    ///
    /// # Panics
    /// If the series is already registered with a different kind.
    pub fn gauge_with(&self, name: &str, labels: &[(&str, &str)]) -> Gauge {
        Gauge(self.slot(
            name,
            labels,
            || Slot::Gauge(Arc::new(AtomicU64::new(0.0f64.to_bits()))),
            |s| match s {
                Slot::Gauge(g) => Some(g.clone()),
                _ => None,
            },
        ))
    }

    /// Returns (registering on first use) the histogram `name` with the
    /// given finite, strictly increasing bucket upper bounds; an
    /// overflow (`+Inf`) bucket is always appended.
    ///
    /// # Panics
    /// If `bounds` is empty, non-finite or not strictly increasing; or
    /// if the series is already registered with a different kind or
    /// different bounds.
    pub fn histogram(&self, name: &str, bounds: &[f64]) -> Histogram {
        self.histogram_with(name, &[], bounds)
    }

    /// Returns (registering on first use) the histogram `name{labels}` —
    /// see [`Registry::histogram`].
    ///
    /// # Panics
    /// As [`Registry::histogram`].
    pub fn histogram_with(&self, name: &str, labels: &[(&str, &str)], bounds: &[f64]) -> Histogram {
        let h = Histogram(self.slot(
            name,
            labels,
            || Slot::Histogram(Arc::new(HistogramCore::new(bounds))),
            |s| match s {
                Slot::Histogram(h) => Some(h.clone()),
                _ => None,
            },
        ));
        if let Some(core) = &h.0 {
            assert_eq!(
                core.bounds, bounds,
                "histogram {name:?} already registered with different bounds"
            );
        }
        h
    }

    /// Starts a wall-clock timer, or a null timer when the registry is
    /// disabled (no [`Instant::now`] call — part of the disabled-path
    /// cost contract).
    pub fn stopwatch(&self) -> Stopwatch {
        Stopwatch(self.inner.as_ref().map(|_| Instant::now()))
    }

    /// Zeroes every registered series in place. Registrations (names,
    /// bucket layouts) and outstanding handles stay valid.
    pub fn reset(&self) {
        let Some(inner) = &self.inner else { return };
        let slots = inner.slots.lock().unwrap_or_else(PoisonError::into_inner);
        for slot in slots.values() {
            match slot {
                Slot::Counter(c) => c.store(0, Ordering::Relaxed),
                Slot::Gauge(g) => g.store(0.0f64.to_bits(), Ordering::Relaxed),
                Slot::Histogram(h) => h.reset(),
            }
        }
    }

    /// A point-in-time copy of every registered series, in deterministic
    /// (sorted-key) order.
    pub fn snapshot(&self) -> Snapshot {
        let mut entries = Vec::new();
        if let Some(inner) = &self.inner {
            let slots = inner.slots.lock().unwrap_or_else(PoisonError::into_inner);
            for (key, slot) in slots.iter() {
                let value = match slot {
                    Slot::Counter(c) => MetricValue::Counter(c.load(Ordering::Relaxed)),
                    Slot::Gauge(g) => MetricValue::Gauge(f64::from_bits(g.load(Ordering::Relaxed))),
                    Slot::Histogram(h) => MetricValue::Histogram {
                        bounds: h.bounds.clone(),
                        buckets: h.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect(),
                        count: h.count.load(Ordering::Relaxed),
                        sum: f64::from_bits(h.sum_bits.load(Ordering::Relaxed)),
                    },
                };
                entries.push(MetricSnapshot { name: key.clone(), value });
            }
        }
        let help = match &self.inner {
            Some(inner) => inner.help.lock().unwrap_or_else(PoisonError::into_inner).clone(),
            None => BTreeMap::new(),
        };
        Snapshot { entries, help }
    }
}

/// A monotonically increasing `u64`. Cloning shares the cell; a handle
/// from a disabled [`Registry`] is a no-op.
#[derive(Debug, Clone)]
pub struct Counter(Option<Arc<AtomicU64>>);

impl Counter {
    /// Adds 1.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        if let Some(c) = &self.0 {
            c.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value (0 for a disabled handle).
    pub fn get(&self) -> u64 {
        self.0.as_ref().map_or(0, |c| c.load(Ordering::Relaxed))
    }
}

/// A last-write-wins `f64`. Cloning shares the cell; a handle from a
/// disabled [`Registry`] is a no-op.
#[derive(Debug, Clone)]
pub struct Gauge(Option<Arc<AtomicU64>>);

impl Gauge {
    /// Sets the value.
    pub fn set(&self, v: f64) {
        if let Some(g) = &self.0 {
            g.store(v.to_bits(), Ordering::Relaxed);
        }
    }

    /// Adds `d` (atomically, CAS loop).
    pub fn add(&self, d: f64) {
        if let Some(g) = &self.0 {
            atomic_f64_add(g, d);
        }
    }

    /// Current value (0.0 for a disabled handle).
    pub fn get(&self) -> f64 {
        self.0.as_ref().map_or(0.0, |g| f64::from_bits(g.load(Ordering::Relaxed)))
    }
}

/// A fixed-bucket histogram. Cloning shares the cells; a handle from a
/// disabled [`Registry`] is a no-op.
///
/// ```
/// use edgebol_metrics::Registry;
///
/// let reg = Registry::new();
/// let h = reg.histogram("edgebol_bench_rep_wall_seconds", &[0.1, 1.0, 10.0]);
/// h.observe(0.5);
/// h.observe(42.0); // above the last bound: lands in the +Inf bucket
/// assert_eq!(h.count(), 2);
/// assert_eq!(h.sum(), 42.5);
/// ```
#[derive(Debug, Clone)]
pub struct Histogram(Option<Arc<HistogramCore>>);

impl Histogram {
    /// Records one observation into the bucket whose upper bound first
    /// contains it (the overflow bucket when above every bound).
    pub fn observe(&self, v: f64) {
        if let Some(h) = &self.0 {
            h.observe(v);
        }
    }

    /// Number of observations so far (0 for a disabled handle).
    pub fn count(&self) -> u64 {
        self.0.as_ref().map_or(0, |h| h.count.load(Ordering::Relaxed))
    }

    /// Sum of observations so far (0.0 for a disabled handle).
    pub fn sum(&self) -> f64 {
        self.0.as_ref().map_or(0.0, |h| f64::from_bits(h.sum_bits.load(Ordering::Relaxed)))
    }
}

/// A wall-clock timer from [`Registry::stopwatch`]; null (records
/// nothing, reads no clock) when the registry is disabled.
#[derive(Debug)]
pub struct Stopwatch(Option<Instant>);

impl Stopwatch {
    /// Seconds since the stopwatch started; `None` for a null timer.
    pub fn elapsed_seconds(&self) -> Option<f64> {
        self.0.map(|t| t.elapsed().as_secs_f64())
    }

    /// Observes the elapsed seconds into `h` (no-op for a null timer).
    pub fn observe(&self, h: &Histogram) {
        if let Some(s) = self.elapsed_seconds() {
            h.observe(s);
        }
    }
}

/// The value part of one snapshotted series.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// A counter's current value.
    Counter(u64),
    /// A gauge's current value.
    Gauge(f64),
    /// A histogram's buckets and aggregates.
    Histogram {
        /// The finite upper bounds (the overflow bucket is implicit).
        bounds: Vec<f64>,
        /// Per-bucket (non-cumulative) counts; `bounds.len() + 1` cells,
        /// the last being the overflow bucket.
        buckets: Vec<u64>,
        /// Total observation count.
        count: u64,
        /// Sum of observed values.
        sum: f64,
    },
}

/// One snapshotted series: the full key (name plus rendered labels) and
/// its value.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricSnapshot {
    /// Series key, e.g. `edgebol_oran_frames_total{dir="tx",link="A1"}`.
    pub name: String,
    /// The snapshotted value.
    pub value: MetricValue,
}

/// A point-in-time copy of a [`Registry`], renderable as Prometheus
/// exposition text, an aligned human table, JSON or CSV.
///
/// ```
/// use edgebol_metrics::Registry;
///
/// let reg = Registry::new();
/// reg.counter("edgebol_oran_frames_total").add(3);
/// reg.histogram("edgebol_core_step_latency_seconds", &[0.01, 0.1]).observe(0.02);
///
/// let snap = reg.snapshot();
/// let prom = snap.render_prometheus();
/// assert!(prom.contains("edgebol_oran_frames_total 3"));
/// assert!(prom.contains("edgebol_core_step_latency_seconds_bucket{le=\"0.1\"} 1"));
/// let table = snap.render_table("metrics");
/// assert!(table.starts_with("== metrics =="));
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Snapshot {
    /// Every series, in deterministic (sorted-key) order.
    pub entries: Vec<MetricSnapshot>,
    /// Family base name → `# HELP` text ([`Registry::describe`]).
    pub help: BTreeMap<String, String>,
}

/// Splits a series key into (base name, rendered label body).
fn split_key(key: &str) -> (&str, Option<&str>) {
    match key.split_once('{') {
        Some((base, rest)) => (base, Some(rest.trim_end_matches('}'))),
        None => (key, None),
    }
}

/// A key with one more label appended (used for histogram `le` series).
fn key_with_suffix_label(key: &str, suffix: &str, label: &str) -> String {
    let (base, labels) = split_key(key);
    match labels {
        Some(body) => format!("{base}{suffix}{{{body},{label}}}"),
        None => format!("{base}{suffix}{{{label}}}"),
    }
}

impl Snapshot {
    /// Whether nothing was registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The value of the series with exactly this key, if registered.
    pub fn get(&self, key: &str) -> Option<&MetricValue> {
        self.entries.iter().find(|e| e.name == key).map(|e| &e.value)
    }

    /// The counter with exactly this key, if registered as one.
    pub fn counter(&self, key: &str) -> Option<u64> {
        match self.get(key)? {
            MetricValue::Counter(v) => Some(*v),
            _ => None,
        }
    }

    /// The gauge with exactly this key, if registered as one.
    pub fn gauge(&self, key: &str) -> Option<f64> {
        match self.get(key)? {
            MetricValue::Gauge(v) => Some(*v),
            _ => None,
        }
    }

    /// A new snapshot keeping only the series `keep` accepts — e.g. to
    /// strip wall-clock series before a determinism comparison.
    pub fn filtered(&self, keep: impl Fn(&MetricSnapshot) -> bool) -> Snapshot {
        Snapshot {
            entries: self.entries.iter().filter(|e| keep(e)).cloned().collect(),
            help: self.help.clone(),
        }
    }

    /// Prometheus-style exposition text: counters and gauges as single
    /// samples, histograms as cumulative `_bucket{le=...}` series plus
    /// `_sum` and `_count`. Each family gets its `# HELP` line (when
    /// described via [`Registry::describe`]) and `# TYPE` line exactly
    /// once, ahead of the family's first sample.
    pub fn render_prometheus(&self) -> String {
        // Help text escaping per the exposition format: backslash and
        // newline only (quotes are legal in help text).
        fn escape_help(s: &str) -> String {
            s.replace('\\', "\\\\").replace('\n', "\\n")
        }
        let mut out = String::new();
        let mut typed: std::collections::BTreeSet<&str> = std::collections::BTreeSet::new();
        for e in &self.entries {
            let (base, _) = split_key(&e.name);
            let kind = match e.value {
                MetricValue::Counter(_) => "counter",
                MetricValue::Gauge(_) => "gauge",
                MetricValue::Histogram { .. } => "histogram",
            };
            if typed.insert(base) {
                if let Some(help) = self.help.get(base) {
                    let _ = writeln!(out, "# HELP {base} {}", escape_help(help));
                }
                let _ = writeln!(out, "# TYPE {base} {kind}");
            }
            match &e.value {
                MetricValue::Counter(v) => {
                    let _ = writeln!(out, "{} {v}", e.name);
                }
                MetricValue::Gauge(v) => {
                    let _ = writeln!(out, "{} {v}", e.name);
                }
                MetricValue::Histogram { bounds, buckets, count, sum } => {
                    let mut cum = 0u64;
                    for (i, b) in buckets.iter().enumerate() {
                        cum += b;
                        let le = bounds
                            .get(i)
                            .map(|b| format!("le=\"{b}\""))
                            .unwrap_or_else(|| "le=\"+Inf\"".to_string());
                        let _ = writeln!(
                            out,
                            "{} {cum}",
                            key_with_suffix_label(&e.name, "_bucket", &le)
                        );
                    }
                    let (base, labels) = split_key(&e.name);
                    let tail = labels.map(|l| format!("{{{l}}}")).unwrap_or_default();
                    let _ = writeln!(out, "{base}_sum{tail} {sum}");
                    let _ = writeln!(out, "{base}_count{tail} {count}");
                }
            }
        }
        out
    }

    /// An aligned, human-readable table (histograms as count / mean /
    /// approximate p50 / p95 — the bucket upper bound at each quantile).
    pub fn render_table(&self, title: &str) -> String {
        let quantile = |bounds: &[f64], buckets: &[u64], count: u64, q: f64| -> String {
            if count == 0 {
                return "-".into();
            }
            let target = (q * count as f64).ceil().max(1.0) as u64;
            let mut cum = 0u64;
            for (i, b) in buckets.iter().enumerate() {
                cum += b;
                if cum >= target {
                    return match bounds.get(i) {
                        Some(bound) => format!("<={bound}"),
                        None => ">inf-bucket".into(),
                    };
                }
            }
            "-".into()
        };
        let rows: Vec<(String, String)> = self
            .entries
            .iter()
            .map(|e| {
                let rendered = match &e.value {
                    MetricValue::Counter(v) => format!("{v}"),
                    MetricValue::Gauge(v) => format!("{v:.3}"),
                    MetricValue::Histogram { bounds, buckets, count, sum } => {
                        let mean = if *count > 0 { sum / *count as f64 } else { 0.0 };
                        format!(
                            "count={count} mean={mean:.4} p50={} p95={}",
                            quantile(bounds, buckets, *count, 0.50),
                            quantile(bounds, buckets, *count, 0.95),
                        )
                    }
                };
                (e.name.clone(), rendered)
            })
            .collect();
        let width = rows.iter().map(|(n, _)| n.len()).max().unwrap_or(0);
        let mut out = String::new();
        let _ = writeln!(out, "== {title} ==");
        for (name, value) in rows {
            let _ = writeln!(out, "{name:<width$}  {value}");
        }
        out
    }

    /// JSON document: `{"counters": {...}, "gauges": {...},
    /// "histograms": {...}}` (hand-rolled; no non-finite values are
    /// produced by the workspace's metrics).
    pub fn to_json(&self) -> String {
        fn esc(s: &str) -> String {
            s.replace('\\', "\\\\").replace('"', "\\\"")
        }
        let mut counters = Vec::new();
        let mut gauges = Vec::new();
        let mut hists = Vec::new();
        for e in &self.entries {
            match &e.value {
                MetricValue::Counter(v) => counters.push(format!("\"{}\": {v}", esc(&e.name))),
                MetricValue::Gauge(v) => gauges.push(format!("\"{}\": {v}", esc(&e.name))),
                MetricValue::Histogram { bounds, buckets, count, sum } => {
                    let bucket_objs: Vec<String> = buckets
                        .iter()
                        .enumerate()
                        .map(|(i, b)| match bounds.get(i) {
                            Some(le) => format!("{{\"le\": {le}, \"count\": {b}}}"),
                            None => format!("{{\"le\": \"+Inf\", \"count\": {b}}}"),
                        })
                        .collect();
                    hists.push(format!(
                        "\"{}\": {{\"count\": {count}, \"sum\": {sum}, \"buckets\": [{}]}}",
                        esc(&e.name),
                        bucket_objs.join(", ")
                    ));
                }
            }
        }
        format!(
            "{{\n  \"counters\": {{{}}},\n  \"gauges\": {{{}}},\n  \"histograms\": {{{}}}\n}}\n",
            counters.join(", "),
            gauges.join(", "),
            hists.join(", ")
        )
    }

    /// CSV rows `metric,kind,field,value`; histograms expand into one
    /// cumulative row per bucket plus `sum` and `count`.
    pub fn to_csv(&self) -> String {
        fn cell(s: &str) -> String {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        }
        let mut out = String::from("metric,kind,field,value\n");
        for e in &self.entries {
            let name = cell(&e.name);
            match &e.value {
                MetricValue::Counter(v) => {
                    let _ = writeln!(out, "{name},counter,value,{v}");
                }
                MetricValue::Gauge(v) => {
                    let _ = writeln!(out, "{name},gauge,value,{v}");
                }
                MetricValue::Histogram { bounds, buckets, count, sum } => {
                    let mut cum = 0u64;
                    for (i, b) in buckets.iter().enumerate() {
                        cum += b;
                        let le = bounds.get(i).map(|b| format!("le={b}"));
                        let le = le.as_deref().unwrap_or("le=+Inf");
                        let _ = writeln!(out, "{name},histogram,{},{cum}", cell(le));
                    }
                    let _ = writeln!(out, "{name},histogram,sum,{sum}");
                    let _ = writeln!(out, "{name},histogram,count,{count}");
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_gauges_histograms_roundtrip() {
        let reg = Registry::new();
        let c = reg.counter("c_total");
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        let g = reg.gauge("g");
        g.set(1.5);
        g.add(1.0);
        assert_eq!(g.get(), 2.5);
        let h = reg.histogram("h_seconds", &[0.1, 1.0]);
        h.observe(0.05);
        h.observe(0.5);
        h.observe(7.0);
        assert_eq!(h.count(), 3);
        assert_eq!(h.sum(), 7.55);
        let snap = reg.snapshot();
        assert_eq!(snap.counter("c_total"), Some(5));
        assert_eq!(snap.gauge("g"), Some(2.5));
        match snap.get("h_seconds") {
            Some(MetricValue::Histogram { buckets, count, .. }) => {
                assert_eq!(buckets, &vec![1, 1, 1]);
                assert_eq!(*count, 3);
            }
            other => panic!("expected histogram, got {other:?}"),
        }
    }

    #[test]
    fn labels_make_distinct_series_and_render_in_key_order() {
        let reg = Registry::new();
        reg.counter_with("f_total", &[("link", "A1"), ("dir", "tx")]).inc();
        reg.counter_with("f_total", &[("link", "E2"), ("dir", "tx")]).add(2);
        let snap = reg.snapshot();
        assert_eq!(snap.counter("f_total{link=\"A1\",dir=\"tx\"}"), Some(1));
        assert_eq!(snap.counter("f_total{link=\"E2\",dir=\"tx\"}"), Some(2));
    }

    #[test]
    #[should_panic(expected = "different kind")]
    fn kind_mismatch_panics() {
        let reg = Registry::new();
        reg.counter("x").inc();
        let _ = reg.gauge("x");
    }

    #[test]
    #[should_panic(expected = "different bounds")]
    fn histogram_bounds_mismatch_panics() {
        let reg = Registry::new();
        let _ = reg.histogram("h", &[1.0, 2.0]);
        let _ = reg.histogram("h", &[1.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn bad_bounds_panic() {
        let _ = Registry::new().histogram("h", &[2.0, 1.0]);
    }

    #[test]
    fn disabled_registry_records_nothing() {
        let reg = Registry::disabled();
        assert!(!reg.is_enabled());
        let c = reg.counter("c");
        c.add(10);
        assert_eq!(c.get(), 0);
        let h = reg.histogram("h", &[1.0]);
        h.observe(0.5);
        assert_eq!(h.count(), 0);
        assert!(reg.snapshot().is_empty());
        assert!(reg.stopwatch().elapsed_seconds().is_none());
    }

    #[test]
    fn prometheus_rendering_is_cumulative_and_typed() {
        let reg = Registry::new();
        let h = reg.histogram_with("lat_seconds", &[("stage", "a")], &[0.1, 1.0]);
        h.observe(0.05);
        h.observe(0.5);
        h.observe(9.0);
        let prom = reg.snapshot().render_prometheus();
        assert!(prom.contains("# TYPE lat_seconds histogram"));
        assert!(prom.contains("lat_seconds_bucket{stage=\"a\",le=\"0.1\"} 1"));
        assert!(prom.contains("lat_seconds_bucket{stage=\"a\",le=\"1\"} 2"));
        assert!(prom.contains("lat_seconds_bucket{stage=\"a\",le=\"+Inf\"} 3"));
        assert!(prom.contains("lat_seconds_sum{stage=\"a\"} 9.55"));
        assert!(prom.contains("lat_seconds_count{stage=\"a\"} 3"));
    }

    #[test]
    fn hostile_label_values_are_escaped_in_the_exposition() {
        let reg = Registry::new();
        // Every character the exposition format cannot carry raw: the
        // escape character itself, the value-closing quote, a newline.
        reg.counter_with("hostile_total", &[("path", "C:\\tmp\\\"x\"\nnext")]).inc();
        reg.counter_with("hostile_total", &[("path", "benign")]).add(2);

        let snap = reg.snapshot();
        let key = "hostile_total{path=\"C:\\\\tmp\\\\\\\"x\\\"\\nnext\"}";
        assert_eq!(snap.counter(key), Some(1), "keys: {:?}", snap.entries);

        let prom = snap.render_prometheus();
        // One sample line per series — the raw newline must not have
        // split the hostile sample in two.
        assert_eq!(prom.matches("# TYPE hostile_total counter").count(), 1);
        assert_eq!(prom.lines().count(), 3);
        assert!(prom.contains(&format!("{key} 1\n")));
        assert!(prom.contains("hostile_total{path=\"benign\"} 2\n"));
    }

    #[test]
    fn help_renders_once_per_family_before_type() {
        let reg = Registry::new();
        reg.describe("f_total", "frames moved\nacross both links");
        reg.describe("lat_seconds", "per-stage latency");
        reg.describe("lat_seconds", "a later description loses");
        reg.counter_with("f_total", &[("link", "A1")]).inc();
        reg.counter_with("f_total", &[("link", "E2")]).inc();
        reg.histogram("lat_seconds", &[0.1]).observe(0.05);
        reg.gauge("undescribed").set(1.0);

        let prom = reg.snapshot().render_prometheus();
        assert_eq!(prom.matches("# HELP f_total frames moved\\nacross both links").count(), 1);
        assert_eq!(prom.matches("# TYPE f_total counter").count(), 1);
        assert_eq!(prom.matches("# HELP lat_seconds per-stage latency").count(), 1);
        assert!(!prom.contains("loses"), "first description wins");
        assert!(!prom.contains("# HELP undescribed"));
        let help_at = prom.find("# HELP f_total").unwrap();
        let type_at = prom.find("# TYPE f_total").unwrap();
        assert!(help_at < type_at, "HELP precedes TYPE:\n{prom}");
    }

    #[test]
    fn json_and_csv_contain_every_series() {
        let reg = Registry::new();
        reg.counter("a_total").inc();
        reg.gauge("b").set(2.0);
        reg.histogram("c_seconds", &[1.0]).observe(0.5);
        let snap = reg.snapshot();
        let json = snap.to_json();
        assert!(json.contains("\"a_total\": 1"));
        assert!(json.contains("\"b\": 2"));
        assert!(json.contains("\"c_seconds\""));
        let csv = snap.to_csv();
        assert!(csv.starts_with("metric,kind,field,value\n"));
        assert!(csv.contains("a_total,counter,value,1"));
        assert!(csv.contains("c_seconds,histogram,le=1,1"));
        assert!(csv.contains("c_seconds,histogram,count,1"));
    }

    #[test]
    fn reset_zeroes_but_keeps_registrations_and_handles() {
        let reg = Registry::new();
        let c = reg.counter("c");
        c.add(7);
        let h = reg.histogram("h", &[1.0]);
        h.observe(0.5);
        reg.reset();
        assert_eq!(reg.snapshot().counter("c"), Some(0));
        assert_eq!(h.count(), 0);
        c.inc();
        assert_eq!(c.get(), 1, "handles stay wired to the same cell after reset");
    }

    #[test]
    fn snapshot_filter_keeps_subsets() {
        let reg = Registry::new();
        reg.counter("keep_total").inc();
        reg.gauge("drop_me").set(1.0);
        let snap = reg.snapshot().filtered(|e| matches!(e.value, MetricValue::Counter(_)));
        assert_eq!(snap.entries.len(), 1);
        assert_eq!(snap.counter("keep_total"), Some(1));
    }

    #[test]
    fn table_rendering_aligns_and_summarizes() {
        let reg = Registry::new();
        reg.counter("long_counter_name_total").add(3);
        let h = reg.histogram("h", &[1.0, 2.0]);
        for _ in 0..20 {
            h.observe(0.5);
        }
        h.observe(1.5);
        let table = reg.snapshot().render_table("t");
        assert!(table.starts_with("== t =="));
        assert!(table.contains("long_counter_name_total  3"));
        assert!(table.contains("count=21"));
        assert!(table.contains("p50=<=1"));
        assert!(table.contains("p95=<=1"));
    }
}

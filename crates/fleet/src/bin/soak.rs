//! Continuous chaos soak: the fleet + flow evaluator run for hours
//! under healing link cuts, scheduled slice kills and periodic
//! checkpointing, restarting every killed slice from its latest
//! snapshot and asserting the whole time that nothing leaks and no
//! learner ever pays a cold start.
//!
//! One *pass* is one fleet run: `EDGEBOL_SOAK_SLICES` slices whose
//! control planes each carry a scheduled E2 cut that heals, plus
//! `EDGEBOL_SOAK_CYCLES` kill/restore cycles spread across the run,
//! each landing after a checkpoint boundary so the restore resumes the
//! learner's GP posterior instead of re-paying warm-up. The pass
//! asserts `cold_restores == 0` and `failed == 0` — a soak that
//! silently degrades to cold learning is a failed soak.
//!
//! `EDGEBOL_SOAK_SECONDS=0` (the default) runs exactly one pass — the
//! bounded deterministic CI mode, whose stdout is byte-stable across
//! thread counts (`cmp`'d in CI at `EDGEBOL_THREADS=1` vs `4`). A
//! positive budget repeats passes (each with a fresh deterministic
//! seed) until the wall clock is spent, watching `/proc/self/status`
//! VmRSS for a leak: memory must plateau after the first pass, not
//! grow with pass count.
//!
//! Deterministic pass summaries go to stdout; wall-clock, throughput
//! and RSS go to stderr only.
//!
//! Knobs: `EDGEBOL_SOAK_SLICES`, `EDGEBOL_SOAK_CYCLES`,
//! `EDGEBOL_SOAK_SECONDS`, `EDGEBOL_CKPT_DIR`, `EDGEBOL_CKPT_EVERY`,
//! `EDGEBOL_FLEET_KILL` (overrides the generated kill schedule), plus
//! the process-wide `EDGEBOL_THREADS`, `EDGEBOL_METRICS`,
//! `EDGEBOL_OPS` (see OPERATIONS.md).

use edgebol_bench::{env, journal, journal_wanted, metrics};
use edgebol_fleet::{Fleet, FleetConfig};
use edgebol_oran::{ChaosConfig, LinkId};
use std::path::PathBuf;
use std::time::Instant;

/// Resident-set size in KiB from `/proc/self/status`, or `None` where
/// the proc filesystem is unavailable (the leak check is then skipped).
fn rss_kb() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmRSS:"))?;
    line.split_whitespace().nth(1)?.parse().ok()
}

/// The fleet configuration for one soak pass. Pure in `(pass, slices,
/// cycles)` apart from the checkpoint directory, so a pass's report is
/// byte-stable at any thread count.
fn pass_config(pass: usize, slices: usize, cycles: usize, ckpt_dir: PathBuf) -> FleetConfig {
    let mut cfg = FleetConfig::quick(slices);
    // Lifetime long enough that every scheduled kill lands strictly
    // after at least one checkpoint boundary for its target slice.
    cfg.periods = 8 * (cycles + 2);
    cfg.seed = 7 + pass as u64;
    cfg.ckpt_dir = Some(ckpt_dir);
    cfg.ckpt_every = env::ckpt_every();
    let kills = env::fleet_kill();
    cfg.kill_schedule = if kills.is_empty() {
        // Cycle c kills slice c%N at period 10+8c: past the first
        // checkpoint (t=7) for seed-wave slices and past t=15 for the
        // late wave (spawned at the period-8 stagger).
        (0..cycles).map(|c| ((c % slices) as u64, 10 + 8 * c)).collect()
    } else {
        kills
    };
    // Every slice's control plane additionally loses its E2 link
    // mid-run and heals: the cut/heal half of each chaos cycle. The
    // reconnect supervisor rides it out under local autonomy.
    cfg.chaos = ChaosConfig::disabled().with_cut(LinkId::E2, 60).with_heal(40);
    cfg
}

fn main() {
    let slices = env::soak_slices();
    let cycles = env::soak_cycles();
    let budget_s = env::soak_seconds();
    let ckpt_dir = env::ckpt_dir().unwrap_or_else(|| {
        std::env::temp_dir().join(format!("edgebol-soak-{}", std::process::id()))
    });
    eprintln!(
        "[soak] slices={slices} cycles={cycles} budget={}s ckpt_dir={}",
        budget_s,
        ckpt_dir.display()
    );

    let started = Instant::now();
    let mut rss_baseline: Option<u64> = None;
    let mut pass = 0usize;
    let mut total_slice_periods = 0usize;
    loop {
        let cfg = pass_config(pass, slices, cycles, ckpt_dir.clone());
        let scheduled_kills = cfg.kill_schedule.len() as u64;
        let mut fleet = Fleet::new(cfg).with_metrics(metrics().clone());
        if journal_wanted() {
            fleet = fleet.with_journal(journal().clone());
        }
        let t0 = Instant::now();
        let report = fleet.run();
        let wall = t0.elapsed().as_secs_f64().max(1e-9);
        total_slice_periods += report.slice_periods;

        // The deterministic artifact: pass index + fleet summary.
        println!("pass={pass} {}", report.summary());

        // Soak invariants. A kill that found its target already retired
        // is legal (an operator-supplied schedule can aim anywhere), but
        // every kill that fired must have resumed from its checkpoint —
        // a cold restart means checkpointing silently stopped working,
        // and a failed slice means the control plane did not survive
        // its cut/heal cycle.
        assert!(report.kills <= scheduled_kills, "more kills than scheduled");
        assert_eq!(
            report.restores, report.kills,
            "pass {pass}: {} kills but only {} checkpoint restores",
            report.kills, report.restores
        );
        assert_eq!(
            report.cold_restores, 0,
            "pass {pass}: a killed slice restarted cold — checkpointing is broken"
        );
        assert_eq!(report.failed, 0, "pass {pass}: a slice died under chaos");

        eprintln!(
            "[soak] pass={pass}: {} slice-periods in {wall:.2}s ({:.0} slice-periods/s), \
             kills={} restores={} checkpoints={}{}",
            report.slice_periods,
            report.slice_periods as f64 / wall,
            report.kills,
            report.restores,
            report.checkpoints,
            rss_kb().map(|r| format!(", rss={r} KiB")).unwrap_or_default(),
        );

        // Leak plateau: after the first pass has warmed allocators and
        // caches, RSS must stay flat — linear growth per pass is a leak.
        if let Some(rss) = rss_kb() {
            match rss_baseline {
                None => rss_baseline = Some(rss),
                Some(base) => assert!(
                    rss <= 2 * base + 65_536,
                    "pass {pass}: rss {rss} KiB vs baseline {base} KiB — memory is not plateauing"
                ),
            }
        }

        pass += 1;
        if budget_s == 0 || started.elapsed().as_secs() >= budget_s as u64 {
            break;
        }
    }

    eprintln!(
        "[soak] done: {pass} pass(es), {} total slice-periods in {:.2}s",
        total_slice_periods,
        started.elapsed().as_secs_f64(),
    );
    edgebol_bench::metrics_report();
}

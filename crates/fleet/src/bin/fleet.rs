//! Fleet scaling bench: N slices x M cells with GP warm-start transfer.
//!
//! Sweeps fleet sizes (`EDGEBOL_FLEET_SLICES`, default half-decade steps
//! 10 → 1000) and, per size, runs a warm arm (late slices seed their GP
//! from the nearest running donor) and a cold arm (every slice learns
//! from scratch) under identical admission dynamics, so the difference
//! in late-wave convergence is attributable to transfer alone. All
//! numbers on stdout and in `results/fleet.csv` are byte-stable at a
//! fixed seed across thread counts; throughput goes to stderr only.
//!
//! Knobs: `EDGEBOL_FLEET_SLICES`, `EDGEBOL_FLEET_PERIODS`,
//! `EDGEBOL_FLEET_CELLS`, `EDGEBOL_FLEET_GPU_CAPACITY`,
//! `EDGEBOL_FLEET_MODE`, plus the process-wide `EDGEBOL_THREADS`,
//! `EDGEBOL_METRICS`, `EDGEBOL_OPS` (see OPERATIONS.md).

use edgebol_bench::{env, f3, journal, journal_wanted, metrics, Table};
use edgebol_fleet::{Fleet, FleetConfig};
use std::time::Instant;

fn main() {
    let sizes = env::fleet_slices();
    let mode = env::fleet_mode();
    let mut table = Table::new(
        "Fleet scaling — GP warm-start transfer vs cold start",
        &[
            "slices",
            "arm",
            "lockstep_periods",
            "slice_periods",
            "aggregate_j",
            "mean_cost",
            "satisfaction",
            "late_conv_median",
            "warm",
            "rejected",
            "out_of_range",
        ],
    );

    for &n in &sizes {
        for (arm, warm) in [("warm", true), ("cold", false)] {
            if (warm && !mode.runs_warm()) || (!warm && !mode.runs_cold()) {
                continue;
            }
            let mut cfg = FleetConfig::bench(n);
            cfg.warm_start = warm;
            let mut fleet = Fleet::new(cfg).with_metrics(metrics().clone());
            if journal_wanted() {
                fleet = fleet.with_journal(journal().clone());
            }
            let t0 = Instant::now();
            let report = fleet.run();
            let wall = t0.elapsed().as_secs_f64().max(1e-9);
            // Throughput is wall-clock-dependent: stderr only, so the
            // stdout/CSV artifact stays byte-stable.
            eprintln!(
                "[fleet] n={n} arm={arm}: {} slice-periods over {} lockstep periods \
                 in {wall:.2}s ({:.0} slice-periods/s)",
                report.slice_periods,
                report.total_periods,
                report.slice_periods as f64 / wall,
            );
            let conv = report
                .median_late_convergence()
                .map(|c| format!("{c:.1}"))
                .unwrap_or_else(|| "n/a".into());
            table.push_row(vec![
                n.to_string(),
                arm.to_string(),
                report.total_periods.to_string(),
                report.slice_periods.to_string(),
                f3(report.aggregate_j),
                f3(report.mean_cost()),
                format!("{:.4}", report.mean_satisfaction()),
                conv,
                report.warm_spawns.to_string(),
                report.admission_rejected.to_string(),
                report.transfer_out_of_range.to_string(),
            ]);
        }
    }

    table.print();
    let path = table.write_csv("fleet").expect("write csv");
    eprintln!("[fleet] wrote {}", path.display());
    edgebol_bench::metrics_report();
}

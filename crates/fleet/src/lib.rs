//! Fleet-scale multi-slice orchestration with GP warm-start transfer.
//!
//! The paper runs EdgeBOL on one slice. An operator runs *fleets*: N
//! slices sharded over M cells, each cell backed by one physical GPU
//! server, slices arriving and leaving while learning runs online. This
//! crate adds that layer on top of the single-slice stack:
//!
//! * [`Fleet`] — drives every slice's [`edgebol_core::Orchestrator`] in
//!   period lockstep, fanning the per-period work across worker threads
//!   with `edgebol_bench`'s deterministic pool. All cross-slice
//!   decisions (admission, contention, donor selection) happen on the
//!   driver thread between periods, so a fixed-seed fleet produces a
//!   byte-identical [`FleetReport`] at any thread count.
//! * **Shared-GPU admission** — each cell has a capacity budget in
//!   demand units; a slice is admitted when its demand fits under the
//!   (slightly overcommitted) budget, otherwise it waits in a pending
//!   queue and retries every period. Overcommitted load feeds back as a
//!   per-period inference-time contention factor through
//!   [`edgebol_testbed::Environment::set_gpu_contention`].
//! * **Warm-start transfer** — when a slice spawns next to already
//!   running slices, its GP posterior is seeded from the nearest
//!   donor's exported experience
//!   ([`edgebol_core::agent::EdgeBolAgent::with_experience`]), skipping
//!   the random warm-up box entirely. Nearness is Euclidean distance in
//!   the unit context space of [`edgebol_testbed::ContextObs::to_unit`];
//!   beyond [`FleetConfig::transfer_radius`] the slice degrades
//!   gracefully to a cold start (counted, never a panic).
//!
//! Slice lifecycle events stream into an [`edgebol_trace::Journal`]
//! (layer `fleet`) and fleet health into an
//! [`edgebol_metrics::Registry`], so the whole fleet is visible on the
//! `EDGEBOL_OPS` HTTP surface. The `fleet` binary in this crate sweeps
//! fleet sizes and reports warm-vs-cold convergence savings (see
//! `OPERATIONS.md` for the `EDGEBOL_FLEET_*` knobs).

#![deny(missing_docs)]

use edgebol_bench::{median, parallel_map_threads};
use edgebol_ckpt::{CkptError, Dec, Enc};
use edgebol_core::agent::EdgeBolAgent;
use edgebol_core::problem::ProblemSpec;
use edgebol_core::trace::Trace;
use edgebol_core::{Orchestrator, OrchestratorError};
use edgebol_metrics::{Counter, Gauge, Registry};
use edgebol_oran::{ChaosConfig, CircuitState, HealthHandle, TransportKind};
use edgebol_testbed::{Calibration, Environment, FlowTestbed, Scenario};
use edgebol_trace::{Journal, Layer};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

/// Checkpoint kind tag for per-slice fleet snapshots.
const SLICE_CKPT_KIND: &str = "edgebol-fleet-slice";

/// Donor experience in physical units, as exported by
/// [`edgebol_core::agent::Agent::export_experience`].
pub type Experience = Vec<(Vec<f64>, [f64; 3])>;

/// Sizing and policy of one fleet run.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Total slices the fleet will spawn over its lifetime.
    pub slices: usize,
    /// Cells (each with its own shared GPU server); slice `i` lives in
    /// cell `i % cells`.
    pub cells: usize,
    /// Control periods each slice runs before retiring.
    pub periods: usize,
    /// Period at which the late wave becomes spawn-eligible. The first
    /// `ceil(slices / 4)` slices are eligible at period 0 (the seed
    /// wave — necessarily cold, there is nobody to learn from); the
    /// rest wait until `stagger`, by which time seed slices are past
    /// warm-up and can donate.
    pub stagger: usize,
    /// Whether eligible spawns warm-start from the nearest donor. The
    /// cold arm of the transfer experiment sets this to `false`;
    /// admission and retirement dynamics are identical either way, so
    /// the two arms spawn every slice at the same period.
    pub warm_start: bool,
    /// Maximum Euclidean distance in unit context space at which a
    /// donor is accepted. Beyond it the spawn degrades to a cold start
    /// and `transfer_out_of_range` is incremented.
    pub transfer_radius: f64,
    /// Newest-K cap on imported donor observations.
    pub transfer_cap: usize,
    /// A donor must have completed at least this many periods (past the
    /// quick config's 6-round warm-up, so its export reflects a real
    /// posterior).
    pub min_donor_periods: usize,
    /// Per-cell GPU admission capacity in demand units; a slice demands
    /// `0.1 + 0.05 x users`.
    pub gpu_capacity: f64,
    /// Admission admits up to `gpu_capacity * overcommit`; load between
    /// capacity and the overcommitted ceiling shows up as an
    /// inference-time contention factor `load / capacity` on every
    /// slice in the cell.
    pub overcommit: f64,
    /// Service-delay bound `d_max` (s) for every slice's problem spec.
    pub d_max: f64,
    /// Precision floor `rho_min` for every slice's problem spec.
    pub rho_min: f64,
    /// Base RNG seed; per-slice environment and agent seeds derive from
    /// it and the slice id.
    pub seed: u64,
    /// Worker threads for the lockstep fan-out; `None` uses the
    /// `EDGEBOL_THREADS` knob / available parallelism. The report is
    /// byte-identical at any setting.
    pub threads: Option<usize>,
    /// Directory for per-slice checkpoint files (`slice-<id>.ckpt`,
    /// written atomically via `edgebol_ckpt::write_atomic`); `None`
    /// disables checkpointing. The soak/bench drivers fill it from
    /// `EDGEBOL_CKPT_DIR`.
    pub ckpt_dir: Option<PathBuf>,
    /// Checkpoint cadence: every running slice is snapshotted after
    /// each `ckpt_every`-th lockstep period. `0` disables the cadence
    /// even when a directory is set.
    pub ckpt_every: usize,
    /// Crash-injection schedule: `(slice, period)` pairs. At the start
    /// of that lockstep period the slice's control plane is destroyed
    /// without warning (no export, no drain) and immediately restarted
    /// from its latest checkpoint — or cold, counted, when no
    /// checkpoint survives decode.
    pub kill_schedule: Vec<(u64, usize)>,
    /// Chaos plan cloned into every slice's control plane (the soak
    /// harness drives healing link cuts through it). Disabled by
    /// default, which preserves the historical fault-free behaviour.
    pub chaos: ChaosConfig,
}

impl FleetConfig {
    /// A fast configuration sized for tests and doc examples: 2 cells,
    /// 24-period slice lifetimes, late wave at period 8.
    pub fn quick(slices: usize) -> Self {
        FleetConfig {
            slices,
            cells: 2,
            periods: 24,
            stagger: 8,
            warm_start: true,
            transfer_radius: 0.6,
            transfer_cap: 64,
            min_donor_periods: 8,
            gpu_capacity: 8.0,
            overcommit: 1.25,
            d_max: 2.0,
            rho_min: 0.5,
            seed: 7,
            threads: None,
            ckpt_dir: None,
            ckpt_every: 8,
            kill_schedule: Vec::new(),
            chaos: ChaosConfig::disabled(),
        }
    }

    /// The bench configuration behind the `fleet` binary: like
    /// [`FleetConfig::quick`] but with the cell count, slice lifetime
    /// and GPU capacity taken from the `EDGEBOL_FLEET_*` knobs and the
    /// late wave at period 16.
    pub fn bench(slices: usize) -> Self {
        FleetConfig {
            cells: edgebol_bench::env::fleet_cells(),
            periods: edgebol_bench::env::fleet_periods(),
            stagger: 16,
            gpu_capacity: edgebol_bench::env::fleet_gpu_capacity(),
            ..Self::quick(slices)
        }
    }

    fn seed_wave(&self) -> usize {
        self.slices.div_ceil(4).max(1)
    }
}

/// How far a slice has got through its lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SlicePhase {
    /// Waiting for eligibility and admission.
    Pending { eligible_at: usize },
    /// Admitted and stepping every period.
    Running,
    /// Ran its full lifetime (or failed) and released its GPU share.
    Retired,
}

/// Per-slice driver state. The `Mutex` exists so worker threads can
/// step disjoint slices through a shared `&[SliceSlot]`; it is never
/// contended (each lockstep period locks each runner exactly once).
struct SliceSlot {
    id: u64,
    cell: usize,
    demand: f64,
    phase: SlicePhase,
    runner: Option<Mutex<Orchestrator>>,
    trace: Trace,
    unit_ctx: [f64; 3],
    spawned_at: usize,
    warm: bool,
    donor: Option<u64>,
    completed: usize,
    failed: bool,
    rejected_once: bool,
    experience: Option<Experience>,
}

/// One slice's outcome.
#[derive(Debug, Clone)]
pub struct SliceReport {
    /// Slice id (also its index in spawn order).
    pub id: u64,
    /// Cell the slice ran in.
    pub cell: usize,
    /// Lockstep period the slice was admitted at.
    pub spawned_at: usize,
    /// Whether it warm-started from a donor.
    pub warm: bool,
    /// The donor it imported experience from, if any.
    pub donor: Option<u64>,
    /// Periods it completed before retiring.
    pub periods: usize,
    /// [`Trace::convergence_period`] at 10% tolerance, relative to its
    /// own spawn.
    pub convergence_period: Option<usize>,
    /// Mean cost over its whole life.
    pub mean_cost: f64,
    /// Mean cost over its first 8 periods — the learning-phase price.
    /// Cold slices pay the max-resources `S_0` warm-up box here; warm
    /// slices start from the donor's posterior instead, so comparing
    /// this across arms is the first-K-period regret of cold starting.
    pub early_cost: f64,
    /// Mean cost over its last 10 periods.
    pub tail_cost: f64,
    /// Constraint satisfaction rate after its first 6 periods.
    pub satisfaction: f64,
}

/// Aggregate outcome of one fleet run. Every number is a pure function
/// of [`FleetConfig`] — wall-clock and thread count never leak in — so
/// [`FleetReport::summary`] is byte-stable across machines and pool
/// sizes.
#[derive(Debug, Clone)]
pub struct FleetReport {
    /// Per-slice outcomes in id order.
    pub slices: Vec<SliceReport>,
    /// Cells in the run.
    pub cells: usize,
    /// Lockstep periods the driver ran until every slice retired.
    pub total_periods: usize,
    /// Total slice-periods stepped (the work unit for throughput).
    pub slice_periods: usize,
    /// Sum of every slice-period's cost `u_t` (eq. 1) — the fleet's
    /// aggregate J.
    pub aggregate_j: f64,
    /// Slices that warm-started.
    pub warm_spawns: u64,
    /// Slices that cold-started.
    pub cold_spawns: u64,
    /// Slices that were refused admission at least once.
    pub admission_rejected: u64,
    /// Total failed admission attempts (one slice can retry many
    /// periods).
    pub admission_retries: u64,
    /// Admissions forced because a slice's demand exceeds even an empty
    /// cell's overcommitted budget (a slice alone on its server always
    /// runs).
    pub admission_forced: u64,
    /// Warm-eligible spawns whose nearest donor was outside
    /// [`FleetConfig::transfer_radius`] (they cold-started instead).
    pub transfer_out_of_range: u64,
    /// Slices whose control plane died mid-run (retired early).
    pub failed: u64,
    /// Runners destroyed by the crash-injection schedule.
    pub kills: u64,
    /// Killed slices successfully resumed from a checkpoint (the
    /// learner kept its GP posterior — no cold warm-up paid).
    pub restores: u64,
    /// Killed slices that had to restart cold: no checkpoint on disk,
    /// or the file failed decode (truncated / corrupt / wrong kind).
    pub cold_restores: u64,
    /// Per-slice checkpoint files written (not in [`FleetReport::summary`]:
    /// an I/O failure must not perturb the deterministic summary bytes).
    pub checkpoints: u64,
}

impl FleetReport {
    /// Median convergence period over late-wave slices (`spawned_at >
    /// 0`) — the population whose spawns are warm in the warm arm and
    /// cold in the cold arm, so comparing this number across the two
    /// arms is the transfer saving. `None` when no late slice has a
    /// convergence estimate.
    pub fn median_late_convergence(&self) -> Option<f64> {
        let xs: Vec<f64> = self
            .slices
            .iter()
            .filter(|s| s.spawned_at > 0)
            .filter_map(|s| s.convergence_period.map(|c| c as f64))
            .collect();
        if xs.is_empty() {
            None
        } else {
            Some(median(&xs))
        }
    }

    /// Mean cost per slice-period across the fleet.
    pub fn mean_cost(&self) -> f64 {
        if self.slice_periods == 0 {
            0.0
        } else {
            self.aggregate_j / self.slice_periods as f64
        }
    }

    /// Mean constraint-satisfaction rate across slices.
    pub fn mean_satisfaction(&self) -> f64 {
        if self.slices.is_empty() {
            return 1.0;
        }
        self.slices.iter().map(|s| s.satisfaction).sum::<f64>() / self.slices.len() as f64
    }

    /// A deterministic one-paragraph summary: identical bytes for
    /// identical configs regardless of thread count (pinned by
    /// `tests/fleet.rs`).
    pub fn summary(&self) -> String {
        let conv = match self.median_late_convergence() {
            Some(c) => format!("{c:.1}"),
            None => "n/a".into(),
        };
        format!(
            "slices={} cells={} lockstep_periods={} slice_periods={} \
             warm={} cold={} rejected={} retries={} forced={} \
             out_of_range={} failed={} kills={} restores={} cold_restores={} \
             aggregate_j={:.3} mean_cost={:.3} \
             satisfaction={:.4} late_median_convergence={}",
            self.slices.len(),
            self.cells,
            self.total_periods,
            self.slice_periods,
            self.warm_spawns,
            self.cold_spawns,
            self.admission_rejected,
            self.admission_retries,
            self.admission_forced,
            self.transfer_out_of_range,
            self.failed,
            self.kills,
            self.restores,
            self.cold_restores,
            self.aggregate_j,
            self.mean_cost(),
            self.mean_satisfaction(),
            conv,
        )
    }
}

/// Fleet-level observability handles (all cheap clones of registry
/// series; a disabled registry turns every record into a no-op).
struct FleetMetrics {
    running: Gauge,
    pending: Gauge,
    spawned_warm: Counter,
    spawned_cold: Counter,
    retired: Counter,
    failed: Counter,
    rejected: Counter,
    retries: Counter,
    forced: Counter,
    out_of_range: Counter,
    kills: Counter,
    restores: Counter,
    cold_restores: Counter,
    checkpoints: Counter,
    aggregate_j: Gauge,
    cell_load: Vec<Gauge>,
}

impl FleetMetrics {
    fn new(reg: &Registry, cells: usize) -> Self {
        reg.describe("edgebol_fleet_running_slices", "Slices currently stepping");
        reg.describe("edgebol_fleet_pending_slices", "Slices waiting for admission");
        reg.describe("edgebol_fleet_spawned_total", "Slices admitted, by spawn mode");
        reg.describe("edgebol_fleet_retired_total", "Slices that completed their lifetime");
        reg.describe("edgebol_fleet_failed_total", "Slices whose control plane died");
        reg.describe(
            "edgebol_fleet_admission_rejected_total",
            "Slices refused admission at least once",
        );
        reg.describe("edgebol_fleet_admission_retries_total", "Failed admission attempts");
        reg.describe(
            "edgebol_fleet_admission_forced_total",
            "Admissions forced into an empty cell over budget",
        );
        reg.describe(
            "edgebol_fleet_transfer_out_of_range_total",
            "Warm-eligible spawns degraded to cold: nearest donor out of range",
        );
        reg.describe(
            "edgebol_fleet_kills_total",
            "Runners destroyed by the crash-injection schedule",
        );
        reg.describe(
            "edgebol_fleet_restores_total",
            "Killed slices resumed from a checkpoint with their posterior intact",
        );
        reg.describe(
            "edgebol_fleet_cold_restores_total",
            "Killed slices restarted cold: checkpoint missing or failed decode",
        );
        reg.describe("edgebol_fleet_checkpoints_total", "Per-slice checkpoint files written");
        reg.describe("edgebol_fleet_aggregate_j", "Running sum of every slice-period's cost");
        reg.describe("edgebol_fleet_gpu_load", "Admitted demand units per cell");
        FleetMetrics {
            running: reg.gauge("edgebol_fleet_running_slices"),
            pending: reg.gauge("edgebol_fleet_pending_slices"),
            spawned_warm: reg.counter_with("edgebol_fleet_spawned_total", &[("mode", "warm")]),
            spawned_cold: reg.counter_with("edgebol_fleet_spawned_total", &[("mode", "cold")]),
            retired: reg.counter("edgebol_fleet_retired_total"),
            failed: reg.counter("edgebol_fleet_failed_total"),
            rejected: reg.counter("edgebol_fleet_admission_rejected_total"),
            retries: reg.counter("edgebol_fleet_admission_retries_total"),
            forced: reg.counter("edgebol_fleet_admission_forced_total"),
            out_of_range: reg.counter("edgebol_fleet_transfer_out_of_range_total"),
            kills: reg.counter("edgebol_fleet_kills_total"),
            restores: reg.counter("edgebol_fleet_restores_total"),
            cold_restores: reg.counter("edgebol_fleet_cold_restores_total"),
            checkpoints: reg.counter("edgebol_fleet_checkpoints_total"),
            aggregate_j: reg.gauge("edgebol_fleet_aggregate_j"),
            cell_load: (0..cells)
                .map(|c| reg.gauge_with("edgebol_fleet_gpu_load", &[("cell", &c.to_string())]))
                .collect(),
        }
    }
}

/// A fleet of EdgeBOL slices sharing M GPU-backed cells.
pub struct Fleet {
    cfg: FleetConfig,
    metrics: Registry,
    journal: Option<Arc<Journal>>,
    health: Option<HealthHandle>,
}

impl Fleet {
    /// Builds a fleet from `cfg`. Observability is off by default; wire
    /// it with [`Fleet::with_metrics`] / [`Fleet::with_journal`].
    ///
    /// ```
    /// use edgebol_fleet::{Fleet, FleetConfig};
    ///
    /// let mut cfg = FleetConfig::quick(6);
    /// cfg.periods = 12;
    /// let report = Fleet::new(cfg).run();
    /// assert_eq!(report.slices.len(), 6);
    /// // The late wave spawned after the seed wave and warm-started.
    /// assert!(report.warm_spawns + report.cold_spawns == 6);
    /// assert!(report.slices.iter().any(|s| s.spawned_at > 0));
    /// ```
    pub fn new(cfg: FleetConfig) -> Self {
        assert!(cfg.slices > 0, "a fleet needs at least one slice");
        assert!(cfg.cells > 0, "a fleet needs at least one cell");
        assert!(cfg.periods > 0, "slices must live at least one period");
        assert!(cfg.gpu_capacity > 0.0 && cfg.overcommit >= 1.0, "admission budget must be real");
        Fleet { cfg, metrics: Registry::disabled(), journal: None, health: None }
    }

    /// Records fleet gauges and counters into `reg` (share it with
    /// [`edgebol_bench::ops_server`] to expose them on `/metrics`).
    pub fn with_metrics(mut self, reg: Registry) -> Self {
        self.metrics = reg;
        self
    }

    /// Streams slice lifecycle events (layer `fleet`) into `journal`.
    pub fn with_journal(mut self, journal: Arc<Journal>) -> Self {
        self.journal = Some(journal);
        self
    }

    /// Mirrors kill/restore health onto `health` (share it with the
    /// ops surface so `/healthz` dips while a killed slice is down and
    /// recovers when the restored runner re-registers its circuit
    /// state).
    pub fn with_health(mut self, health: HealthHandle) -> Self {
        self.health = Some(health);
        self
    }

    fn journal_event(
        &self,
        kind: &'static str,
        period: usize,
        fields: Vec<(&'static str, String)>,
    ) {
        if let Some(j) = &self.journal {
            j.record(Layer::Fleet, kind, Some(period as u64), fields);
        }
    }

    /// Per-slice GPU demand estimate: a base share plus a per-user
    /// share, so heavier slices claim more of the admission budget.
    fn demand_of(scenario: &Scenario) -> f64 {
        0.1 + 0.05 * scenario.num_users() as f64
    }

    /// Runs the fleet to completion: every slice spawns (modulo
    /// admission delay), lives [`FleetConfig::periods`] periods and
    /// retires. Returns the deterministic report.
    pub fn run(&mut self) -> FleetReport {
        let cfg = self.cfg.clone();
        let fm = FleetMetrics::new(&self.metrics, cfg.cells);
        let seed_wave = cfg.seed_wave();
        let mut slots: Vec<SliceSlot> = (0..cfg.slices)
            .map(|i| {
                let scenario = Scenario::fleet_slice(i as u64);
                SliceSlot {
                    id: i as u64,
                    cell: i % cfg.cells,
                    demand: Self::demand_of(&scenario),
                    phase: SlicePhase::Pending {
                        eligible_at: if i < seed_wave { 0 } else { cfg.stagger },
                    },
                    runner: None,
                    trace: Trace::default(),
                    unit_ctx: [0.0; 3],
                    spawned_at: 0,
                    warm: false,
                    donor: None,
                    completed: 0,
                    failed: false,
                    rejected_once: false,
                    experience: None,
                }
            })
            .collect();
        let mut cell_load = vec![0.0f64; cfg.cells];
        let mut report = FleetReport {
            slices: Vec::new(),
            cells: cfg.cells,
            total_periods: 0,
            slice_periods: 0,
            aggregate_j: 0.0,
            warm_spawns: 0,
            cold_spawns: 0,
            admission_rejected: 0,
            admission_retries: 0,
            admission_forced: 0,
            transfer_out_of_range: 0,
            failed: 0,
            kills: 0,
            restores: 0,
            cold_restores: 0,
            checkpoints: 0,
        };
        let threads = cfg
            .threads
            .or_else(edgebol_bench::env::threads)
            .or_else(|| std::thread::available_parallelism().ok().map(|n| n.get()))
            .unwrap_or(1);

        let mut t = 0usize;
        let mut restored_any = false;
        loop {
            let all_retired = slots.iter().all(|s| s.phase == SlicePhase::Retired);
            if all_retired {
                break;
            }
            assert!(
                t < 1_000_000,
                "fleet driver did not converge: {} slices still pending at period {t}",
                slots.iter().filter(|s| s.phase != SlicePhase::Retired).count()
            );

            // Crash-injection pass (driver thread, schedule order):
            // destroy each scheduled runner before the period steps,
            // then restart it from the latest checkpoint.
            for (kid, at) in cfg.kill_schedule.iter().copied() {
                if at != t {
                    continue;
                }
                let Some(i) = slots.iter().position(|s| s.id == kid) else { continue };
                if slots[i].phase != SlicePhase::Running {
                    continue;
                }
                // The simulated crash: the runner is dropped on the
                // floor — no experience export, no state drain.
                drop(slots[i].runner.take());
                report.kills += 1;
                fm.kills.inc();
                if let Some(h) = &self.health {
                    h.set(CircuitState::Open { probe_at: 0 });
                }
                self.journal_event("slice_killed", t, vec![("slice", kid.to_string())]);
                restored_any = true;
                let started = std::time::Instant::now();
                match Self::try_restore(&cfg, &mut slots[i]) {
                    Ok(resume_at) => {
                        report.restores += 1;
                        fm.restores.inc();
                        if let (Some(h), Some(r)) = (&self.health, &slots[i].runner) {
                            h.set(r.lock().unwrap_or_else(|e| e.into_inner()).circuit_state());
                        }
                        self.journal_event(
                            "slice_restored",
                            t,
                            vec![
                                ("slice", kid.to_string()),
                                ("ckpt_period", resume_at.to_string()),
                                ("resumed_completed", slots[i].completed.to_string()),
                                ("restore_us", started.elapsed().as_micros().to_string()),
                            ],
                        );
                    }
                    Err(e) => {
                        self.journal_event(
                            "slice_restore_failed",
                            t,
                            vec![("slice", kid.to_string()), ("error", e.to_string())],
                        );
                        report.cold_restores += 1;
                        fm.cold_restores.inc();
                        self.cold_restart(&cfg, &mut slots[i], t, &mut report, &fm, &mut cell_load);
                    }
                }
            }

            // Admission pass (driver thread, id order — deterministic).
            for i in 0..slots.len() {
                let eligible = match slots[i].phase {
                    SlicePhase::Pending { eligible_at } => eligible_at <= t,
                    _ => false,
                };
                if !eligible {
                    continue;
                }
                let (cell, demand) = (slots[i].cell, slots[i].demand);
                let budget = cfg.gpu_capacity * cfg.overcommit;
                let empty = cell_load[cell] == 0.0;
                if cell_load[cell] + demand <= budget || empty {
                    if empty && demand > budget {
                        report.admission_forced += 1;
                        fm.forced.inc();
                    }
                    self.spawn(&cfg, &mut slots, i, t, &mut report, &fm);
                    if slots[i].phase == SlicePhase::Running {
                        cell_load[cell] += demand;
                    }
                } else {
                    report.admission_retries += 1;
                    fm.retries.inc();
                    if !slots[i].rejected_once {
                        slots[i].rejected_once = true;
                        report.admission_rejected += 1;
                        fm.rejected.inc();
                        self.journal_event(
                            "admission_rejected",
                            t,
                            vec![
                                ("slice", slots[i].id.to_string()),
                                ("cell", cell.to_string()),
                                ("load", format!("{:.2}", cell_load[cell])),
                            ],
                        );
                    }
                }
            }

            // Contention pass: overcommitted cells slow everyone down.
            for (c, load) in cell_load.iter().enumerate() {
                fm.cell_load[c].set(*load);
            }
            for slot in slots.iter_mut() {
                if slot.phase == SlicePhase::Running {
                    let factor = (cell_load[slot.cell] / cfg.gpu_capacity).max(1.0);
                    if let Some(r) = &mut slot.runner {
                        r.get_mut().unwrap_or_else(|e| e.into_inner()).set_gpu_contention(factor);
                    }
                }
            }

            // Lockstep step across worker threads; results come back in
            // slice-index order regardless of which worker ran what.
            let running: Vec<usize> =
                (0..slots.len()).filter(|&i| slots[i].phase == SlicePhase::Running).collect();
            fm.running.set(running.len() as f64);
            fm.pending.set(
                slots.iter().filter(|s| matches!(s.phase, SlicePhase::Pending { .. })).count()
                    as f64,
            );
            let slots_ref = &slots;
            let running_ref = &running;
            let results = parallel_map_threads(threads.min(running.len().max(1)), running.len(), {
                move |k| {
                    let slot = &slots_ref[running_ref[k]];
                    let mut orch = slot
                        .runner
                        .as_ref()
                        .expect("running slice has a runner")
                        .lock()
                        .unwrap_or_else(|e| e.into_inner());
                    orch.try_step()
                }
            });

            // Collect in index order on the driver thread, so float
            // accumulation never depends on scheduling.
            for (k, res) in results.into_iter().enumerate() {
                let i = running[k];
                match res {
                    Ok(rec) => {
                        report.aggregate_j += rec.cost;
                        report.slice_periods += 1;
                        slots[i].trace.records.push(rec);
                        slots[i].completed += 1;
                        if slots[i].completed >= cfg.periods {
                            self.retire(&mut slots[i], t, false, &mut report, &fm);
                            cell_load[slots[i].cell] -= slots[i].demand;
                        }
                    }
                    Err(e) => {
                        self.journal_event(
                            "slice_failed",
                            t,
                            vec![("slice", slots[i].id.to_string()), ("error", e.to_string())],
                        );
                        self.dump_slice_flight(&slots[i], &e);
                        self.retire(&mut slots[i], t, true, &mut report, &fm);
                        cell_load[slots[i].cell] -= slots[i].demand;
                    }
                }
            }
            fm.aggregate_j.set(report.aggregate_j);

            // Checkpoint pass: snapshot every running slice after each
            // ckpt_every-th period, atomically (temp file + rename), so
            // a kill at any instant finds either the old or the new
            // checkpoint — never a torn one.
            if let Some(dir) = &cfg.ckpt_dir {
                if cfg.ckpt_every > 0 && (t + 1).is_multiple_of(cfg.ckpt_every) {
                    for slot in slots.iter().filter(|s| s.phase == SlicePhase::Running) {
                        match Self::checkpoint_slice(dir, slot, t) {
                            Ok(()) => {
                                report.checkpoints += 1;
                                fm.checkpoints.inc();
                            }
                            Err(e) => {
                                // A failed write must not kill the fleet
                                // (or perturb the deterministic summary):
                                // the slice just keeps its older file.
                                self.journal_event(
                                    "ckpt_failed",
                                    t,
                                    vec![("slice", slot.id.to_string()), ("error", e.to_string())],
                                );
                            }
                        }
                    }
                }
            }
            t += 1;
        }
        // Restores re-run periods the pre-kill pass already counted, so
        // the streaming aggregates double-count. Recompute them from the
        // (truncated) traces — but only when a restore happened, keeping
        // uninterrupted runs bit-identical to the historical accumulation
        // order.
        if restored_any {
            report.aggregate_j = slots.iter().map(|s| s.trace.costs().iter().sum::<f64>()).sum();
            report.slice_periods = slots.iter().map(|s| s.trace.records.len()).sum();
            fm.aggregate_j.set(report.aggregate_j);
        }
        report.total_periods = t;
        fm.running.set(0.0);
        fm.pending.set(0.0);
        self.journal_event(
            "fleet_done",
            t,
            vec![
                ("slices", cfg.slices.to_string()),
                ("slice_periods", report.slice_periods.to_string()),
            ],
        );
        report.slices.sort_by_key(|s| s.id);
        report
    }

    /// Spawns slice `i` at period `t`: builds its environment, picks a
    /// donor if warm-starting, and wires the orchestrator over the
    /// in-process poll transport (cheapest at fleet scale).
    fn spawn(
        &self,
        cfg: &FleetConfig,
        slots: &mut [SliceSlot],
        i: usize,
        t: usize,
        report: &mut FleetReport,
        fm: &FleetMetrics,
    ) {
        let id = slots[i].id;
        let (env, mut agent, spec, unit_ctx) = Self::fresh_parts(cfg, id);

        // Donor selection: nearest eligible slice in unit context space,
        // accepted only within the transfer radius.
        let mut donor: Option<(usize, f64)> = None;
        if cfg.warm_start && t > 0 {
            for (j, cand) in slots.iter().enumerate() {
                let eligible = j != i
                    && cand.completed >= cfg.min_donor_periods
                    && matches!(cand.phase, SlicePhase::Running | SlicePhase::Retired)
                    && !cand.failed;
                if !eligible {
                    continue;
                }
                let d = dist(&unit_ctx, &cand.unit_ctx);
                if donor.map(|(_, best)| d < best).unwrap_or(true) {
                    donor = Some((j, d));
                }
            }
        }
        let (experience, donor_id) = match donor {
            Some((j, d)) if d <= cfg.transfer_radius => {
                let exp = match &slots[j].experience {
                    Some(e) => Some(e.clone()),
                    None => slots[j].runner.as_ref().and_then(|r| {
                        r.lock().unwrap_or_else(|e| e.into_inner()).agent_experience()
                    }),
                };
                (exp, Some(slots[j].id))
            }
            Some((_, _)) => {
                report.transfer_out_of_range += 1;
                fm.out_of_range.inc();
                (None, None)
            }
            None => (None, None),
        };

        let warm = match &experience {
            Some(exp) if !exp.is_empty() => {
                let cap = exp.len().saturating_sub(cfg.transfer_cap);
                agent = agent.with_experience(&exp[cap..]);
                true
            }
            _ => false,
        };

        let slot = &mut slots[i];
        slot.unit_ctx = unit_ctx;
        slot.spawned_at = t;
        slot.warm = warm;
        slot.donor = if warm { donor_id } else { None };
        match Orchestrator::new_with_transport(
            Box::new(env),
            Box::new(agent),
            spec,
            cfg.chaos.clone(),
            Registry::disabled(),
            TransportKind::Poll,
        ) {
            Ok(orch) => {
                slot.runner = Some(Mutex::new(orch));
                slot.phase = SlicePhase::Running;
                if warm {
                    report.warm_spawns += 1;
                    fm.spawned_warm.inc();
                } else {
                    report.cold_spawns += 1;
                    fm.spawned_cold.inc();
                }
                self.journal_event(
                    "slice_spawned",
                    t,
                    vec![
                        ("slice", id.to_string()),
                        ("cell", slot.cell.to_string()),
                        ("mode", if warm { "warm".into() } else { "cold".into() }),
                        ("donor", slot.donor.map(|d| d.to_string()).unwrap_or_else(|| "-".into())),
                    ],
                );
            }
            Err(e) => {
                // The in-process control plane cannot realistically fail
                // to wire up, but a dead slice must not wedge the fleet.
                slot.phase = SlicePhase::Retired;
                slot.failed = true;
                report.failed += 1;
                fm.failed.inc();
                report.slices.push(SliceReport {
                    id,
                    cell: slot.cell,
                    spawned_at: t,
                    warm: false,
                    donor: None,
                    periods: 0,
                    convergence_period: None,
                    mean_cost: 0.0,
                    early_cost: 0.0,
                    tail_cost: 0.0,
                    satisfaction: 1.0,
                });
                self.journal_event(
                    "slice_failed",
                    t,
                    vec![("slice", id.to_string()), ("error", e.to_string())],
                );
            }
        }
    }

    /// Builds the deterministic per-slice parts every construction path
    /// shares: environment, cold agent, problem spec and unit context.
    /// Spawn, checkpoint restore and cold restart all come through
    /// here, so a restored slice is built from exactly the seeds its
    /// original spawn used (restore then overwrites the RNG streams
    /// from the snapshot).
    fn fresh_parts(
        cfg: &FleetConfig,
        id: u64,
    ) -> (FlowTestbed, EdgeBolAgent, ProblemSpec, [f64; 3]) {
        let env_seed = cfg.seed.wrapping_add(id.wrapping_mul(0x9E37_79B9));
        let mut env = FlowTestbed::new(Calibration::fast(), Scenario::fleet_slice(id), env_seed);
        let unit_ctx = env.observe_context().to_unit();
        let spec = ProblemSpec::new(1.0, 8.0, cfg.d_max, cfg.rho_min);
        let agent = EdgeBolAgent::quick_for_tests(&spec, env_seed.wrapping_add(1));
        (env, agent, spec, unit_ctx)
    }

    /// Writes one slice's checkpoint: driver-side lifecycle meta plus
    /// the orchestrator's full snapshot (learner, supervisor, env),
    /// framed and CRC'd by `edgebol_ckpt`, atomically replacing any
    /// previous file.
    fn checkpoint_slice(dir: &Path, slot: &SliceSlot, t: usize) -> Result<(), CkptError> {
        let orch_bytes = slot
            .runner
            .as_ref()
            .expect("running slice has a runner")
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .save_state();
        let mut e = Enc::new();
        e.u64(slot.id);
        e.usize(t + 1); // first lockstep period a restore will re-run
        e.usize(slot.completed);
        e.usize(slot.spawned_at);
        e.bool(slot.warm);
        e.bool(slot.donor.is_some());
        e.u64(slot.donor.unwrap_or(0));
        e.bytes(&orch_bytes);
        edgebol_ckpt::write_atomic(
            &dir.join(format!("slice-{}.ckpt", slot.id)),
            SLICE_CKPT_KIND,
            &e.finish(),
        )
    }

    /// Restores a killed slice from `ckpt_dir/slice-<id>.ckpt`. On
    /// success the slot's runner resumes bit-identically from the
    /// checkpointed period (its trace is truncated back to the
    /// checkpointed progress, so re-run periods are not double-kept)
    /// and the lockstep period the restore re-runs from is returned.
    /// Every failure — no directory, missing file, torn or corrupt
    /// frame, wrong slice — is a typed [`CkptError`] the caller turns
    /// into a counted cold restart, never a panic.
    fn try_restore(cfg: &FleetConfig, slot: &mut SliceSlot) -> Result<usize, CkptError> {
        let dir = cfg
            .ckpt_dir
            .as_ref()
            .ok_or_else(|| CkptError::BadValue("no checkpoint directory configured".into()))?;
        let payload =
            edgebol_ckpt::read(&dir.join(format!("slice-{}.ckpt", slot.id)), SLICE_CKPT_KIND)?;
        let mut d = Dec::new(&payload);
        let id = d.u64()?;
        if id != slot.id {
            return Err(CkptError::BadValue(format!(
                "checkpoint is for slice {id}, expected {}",
                slot.id
            )));
        }
        let resume_at = d.usize()?;
        let completed = d.usize()?;
        if completed > slot.trace.records.len() {
            return Err(CkptError::BadValue(format!(
                "checkpoint claims {completed} completed periods, trace has {}",
                slot.trace.records.len()
            )));
        }
        let spawned_at = d.usize()?;
        let warm = d.bool()?;
        let has_donor = d.bool()?;
        let donor_raw = d.u64()?;
        let orch_bytes = d.byte_vec()?;
        d.expect_end()?;

        let (env, agent, spec, unit_ctx) = Self::fresh_parts(cfg, slot.id);
        let mut orch = Orchestrator::new_with_transport(
            Box::new(env),
            Box::new(agent),
            spec,
            cfg.chaos.clone(),
            Registry::disabled(),
            TransportKind::Poll,
        )
        .map_err(|e| CkptError::BadValue(format!("control plane rebuild failed: {e}")))?;
        orch.restore_state(&orch_bytes)?;

        slot.runner = Some(Mutex::new(orch));
        slot.trace.records.truncate(completed);
        slot.completed = completed;
        slot.spawned_at = spawned_at;
        slot.warm = warm;
        slot.donor = has_donor.then_some(donor_raw);
        slot.unit_ctx = unit_ctx;
        slot.phase = SlicePhase::Running;
        Ok(resume_at)
    }

    /// Cold-restart fallback when a killed slice has no usable
    /// checkpoint: the slice keeps its admission slot but restarts its
    /// whole lifetime — fresh environment, fresh (cold) learner, empty
    /// trace. Only when even the rebuild fails does the slice retire as
    /// failed and release its GPU share.
    fn cold_restart(
        &self,
        cfg: &FleetConfig,
        slot: &mut SliceSlot,
        t: usize,
        report: &mut FleetReport,
        fm: &FleetMetrics,
        cell_load: &mut [f64],
    ) {
        let (env, agent, spec, unit_ctx) = Self::fresh_parts(cfg, slot.id);
        match Orchestrator::new_with_transport(
            Box::new(env),
            Box::new(agent),
            spec,
            cfg.chaos.clone(),
            Registry::disabled(),
            TransportKind::Poll,
        ) {
            Ok(orch) => {
                slot.runner = Some(Mutex::new(orch));
                slot.trace = Trace::default();
                slot.completed = 0;
                slot.spawned_at = t;
                slot.warm = false;
                slot.donor = None;
                slot.unit_ctx = unit_ctx;
                slot.phase = SlicePhase::Running;
                if let Some(h) = &self.health {
                    h.set(CircuitState::Connected);
                }
                self.journal_event("slice_cold_restarted", t, vec![("slice", slot.id.to_string())]);
            }
            Err(e) => {
                self.journal_event(
                    "slice_failed",
                    t,
                    vec![("slice", slot.id.to_string()), ("error", e.to_string())],
                );
                self.retire(slot, t, true, report, fm);
                cell_load[slot.cell] -= slot.demand;
            }
        }
    }

    /// A slice whose control plane dies mid-fleet dumps the same JSON
    /// incident file the single-run driver's flight recorder writes
    /// (same retention, same meta shape via
    /// [`edgebol_bench::flight_meta`]), tagged with the slice id, when
    /// `EDGEBOL_FLIGHT_DIR` is set.
    fn dump_slice_flight(&self, slot: &SliceSlot, e: &OrchestratorError) {
        let Some(dir) = edgebol_bench::env::flight_dir() else { return };
        let mut meta = match &slot.runner {
            Some(r) => edgebol_bench::flight_meta(&r.lock().unwrap_or_else(|p| p.into_inner()), e),
            None => vec![("error", e.to_string()), ("stage", e.stage().to_string())],
        };
        meta.push(("slice", slot.id.to_string()));
        let journal = self.journal.as_ref().unwrap_or_else(|| edgebol_bench::journal());
        match edgebol_trace::dump_flight_record(
            &dir,
            e.stage(),
            edgebol_bench::FLIGHT_KEEP_PERIODS,
            journal,
            &meta,
        ) {
            Ok(path) => eprintln!(
                "[edgebol-fleet] flight record for slice {} written to {}",
                slot.id,
                path.display()
            ),
            Err(io) => {
                eprintln!("[edgebol-fleet] flight record for slice {} failed: {io}", slot.id)
            }
        }
    }

    /// Retires a slice: exports its final experience for future donors,
    /// drops the orchestrator and records its report row.
    fn retire(
        &self,
        slot: &mut SliceSlot,
        t: usize,
        failed: bool,
        report: &mut FleetReport,
        fm: &FleetMetrics,
    ) {
        if let Some(r) = slot.runner.take() {
            let orch = r.into_inner().unwrap_or_else(|e| e.into_inner());
            slot.experience = orch.agent_experience();
        }
        slot.phase = SlicePhase::Retired;
        slot.failed = slot.failed || failed;
        if failed {
            report.failed += 1;
            fm.failed.inc();
        } else {
            fm.retired.inc();
        }
        let conv = slot.trace.convergence_period(0.1);
        self.journal_event(
            "slice_retired",
            t,
            vec![
                ("slice", slot.id.to_string()),
                ("periods", slot.completed.to_string()),
                ("convergence", conv.map(|c| c.to_string()).unwrap_or_else(|| "-".into())),
            ],
        );
        report.slices.push(SliceReport {
            id: slot.id,
            cell: slot.cell,
            spawned_at: slot.spawned_at,
            warm: slot.warm,
            donor: slot.donor,
            periods: slot.completed,
            convergence_period: conv,
            mean_cost: if slot.completed == 0 {
                0.0
            } else {
                slot.trace.costs().iter().sum::<f64>() / slot.completed as f64
            },
            early_cost: {
                let k = slot.completed.min(8);
                if k == 0 {
                    0.0
                } else {
                    slot.trace.costs()[..k].iter().sum::<f64>() / k as f64
                }
            },
            tail_cost: if slot.completed == 0 { 0.0 } else { slot.trace.tail_mean_cost(10) },
            satisfaction: slot.trace.satisfaction_rate(6),
        });
    }
}

/// Euclidean distance in unit context space.
fn dist(a: &[f64; 3], b: &[f64; 3]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum::<f64>().sqrt()
}

//! Fleet-scale multi-slice orchestration with GP warm-start transfer.
//!
//! The paper runs EdgeBOL on one slice. An operator runs *fleets*: N
//! slices sharded over M cells, each cell backed by one physical GPU
//! server, slices arriving and leaving while learning runs online. This
//! crate adds that layer on top of the single-slice stack:
//!
//! * [`Fleet`] — drives every slice's [`edgebol_core::Orchestrator`] in
//!   period lockstep, fanning the per-period work across worker threads
//!   with `edgebol_bench`'s deterministic pool. All cross-slice
//!   decisions (admission, contention, donor selection) happen on the
//!   driver thread between periods, so a fixed-seed fleet produces a
//!   byte-identical [`FleetReport`] at any thread count.
//! * **Shared-GPU admission** — each cell has a capacity budget in
//!   demand units; a slice is admitted when its demand fits under the
//!   (slightly overcommitted) budget, otherwise it waits in a pending
//!   queue and retries every period. Overcommitted load feeds back as a
//!   per-period inference-time contention factor through
//!   [`edgebol_testbed::Environment::set_gpu_contention`].
//! * **Warm-start transfer** — when a slice spawns next to already
//!   running slices, its GP posterior is seeded from the nearest
//!   donor's exported experience
//!   ([`edgebol_core::agent::EdgeBolAgent::with_experience`]), skipping
//!   the random warm-up box entirely. Nearness is Euclidean distance in
//!   the unit context space of [`edgebol_testbed::ContextObs::to_unit`];
//!   beyond [`FleetConfig::transfer_radius`] the slice degrades
//!   gracefully to a cold start (counted, never a panic).
//!
//! Slice lifecycle events stream into an [`edgebol_trace::Journal`]
//! (layer `fleet`) and fleet health into an
//! [`edgebol_metrics::Registry`], so the whole fleet is visible on the
//! `EDGEBOL_OPS` HTTP surface. The `fleet` binary in this crate sweeps
//! fleet sizes and reports warm-vs-cold convergence savings (see
//! `OPERATIONS.md` for the `EDGEBOL_FLEET_*` knobs).

#![deny(missing_docs)]

use edgebol_bench::{median, parallel_map_threads};
use edgebol_core::agent::EdgeBolAgent;
use edgebol_core::problem::ProblemSpec;
use edgebol_core::trace::Trace;
use edgebol_core::Orchestrator;
use edgebol_metrics::{Counter, Gauge, Registry};
use edgebol_oran::{ChaosConfig, TransportKind};
use edgebol_testbed::{Calibration, Environment, FlowTestbed, Scenario};
use edgebol_trace::{Journal, Layer};
use std::sync::{Arc, Mutex};

/// Donor experience in physical units, as exported by
/// [`edgebol_core::agent::Agent::export_experience`].
pub type Experience = Vec<(Vec<f64>, [f64; 3])>;

/// Sizing and policy of one fleet run.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Total slices the fleet will spawn over its lifetime.
    pub slices: usize,
    /// Cells (each with its own shared GPU server); slice `i` lives in
    /// cell `i % cells`.
    pub cells: usize,
    /// Control periods each slice runs before retiring.
    pub periods: usize,
    /// Period at which the late wave becomes spawn-eligible. The first
    /// `ceil(slices / 4)` slices are eligible at period 0 (the seed
    /// wave — necessarily cold, there is nobody to learn from); the
    /// rest wait until `stagger`, by which time seed slices are past
    /// warm-up and can donate.
    pub stagger: usize,
    /// Whether eligible spawns warm-start from the nearest donor. The
    /// cold arm of the transfer experiment sets this to `false`;
    /// admission and retirement dynamics are identical either way, so
    /// the two arms spawn every slice at the same period.
    pub warm_start: bool,
    /// Maximum Euclidean distance in unit context space at which a
    /// donor is accepted. Beyond it the spawn degrades to a cold start
    /// and `transfer_out_of_range` is incremented.
    pub transfer_radius: f64,
    /// Newest-K cap on imported donor observations.
    pub transfer_cap: usize,
    /// A donor must have completed at least this many periods (past the
    /// quick config's 6-round warm-up, so its export reflects a real
    /// posterior).
    pub min_donor_periods: usize,
    /// Per-cell GPU admission capacity in demand units; a slice demands
    /// `0.1 + 0.05 x users`.
    pub gpu_capacity: f64,
    /// Admission admits up to `gpu_capacity * overcommit`; load between
    /// capacity and the overcommitted ceiling shows up as an
    /// inference-time contention factor `load / capacity` on every
    /// slice in the cell.
    pub overcommit: f64,
    /// Service-delay bound `d_max` (s) for every slice's problem spec.
    pub d_max: f64,
    /// Precision floor `rho_min` for every slice's problem spec.
    pub rho_min: f64,
    /// Base RNG seed; per-slice environment and agent seeds derive from
    /// it and the slice id.
    pub seed: u64,
    /// Worker threads for the lockstep fan-out; `None` uses the
    /// `EDGEBOL_THREADS` knob / available parallelism. The report is
    /// byte-identical at any setting.
    pub threads: Option<usize>,
}

impl FleetConfig {
    /// A fast configuration sized for tests and doc examples: 2 cells,
    /// 24-period slice lifetimes, late wave at period 8.
    pub fn quick(slices: usize) -> Self {
        FleetConfig {
            slices,
            cells: 2,
            periods: 24,
            stagger: 8,
            warm_start: true,
            transfer_radius: 0.6,
            transfer_cap: 64,
            min_donor_periods: 8,
            gpu_capacity: 8.0,
            overcommit: 1.25,
            d_max: 2.0,
            rho_min: 0.5,
            seed: 7,
            threads: None,
        }
    }

    /// The bench configuration behind the `fleet` binary: like
    /// [`FleetConfig::quick`] but with the cell count, slice lifetime
    /// and GPU capacity taken from the `EDGEBOL_FLEET_*` knobs and the
    /// late wave at period 16.
    pub fn bench(slices: usize) -> Self {
        FleetConfig {
            cells: edgebol_bench::env::fleet_cells(),
            periods: edgebol_bench::env::fleet_periods(),
            stagger: 16,
            gpu_capacity: edgebol_bench::env::fleet_gpu_capacity(),
            ..Self::quick(slices)
        }
    }

    fn seed_wave(&self) -> usize {
        self.slices.div_ceil(4).max(1)
    }
}

/// How far a slice has got through its lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SlicePhase {
    /// Waiting for eligibility and admission.
    Pending { eligible_at: usize },
    /// Admitted and stepping every period.
    Running,
    /// Ran its full lifetime (or failed) and released its GPU share.
    Retired,
}

/// Per-slice driver state. The `Mutex` exists so worker threads can
/// step disjoint slices through a shared `&[SliceSlot]`; it is never
/// contended (each lockstep period locks each runner exactly once).
struct SliceSlot {
    id: u64,
    cell: usize,
    demand: f64,
    phase: SlicePhase,
    runner: Option<Mutex<Orchestrator>>,
    trace: Trace,
    unit_ctx: [f64; 3],
    spawned_at: usize,
    warm: bool,
    donor: Option<u64>,
    completed: usize,
    failed: bool,
    rejected_once: bool,
    experience: Option<Experience>,
}

/// One slice's outcome.
#[derive(Debug, Clone)]
pub struct SliceReport {
    /// Slice id (also its index in spawn order).
    pub id: u64,
    /// Cell the slice ran in.
    pub cell: usize,
    /// Lockstep period the slice was admitted at.
    pub spawned_at: usize,
    /// Whether it warm-started from a donor.
    pub warm: bool,
    /// The donor it imported experience from, if any.
    pub donor: Option<u64>,
    /// Periods it completed before retiring.
    pub periods: usize,
    /// [`Trace::convergence_period`] at 10% tolerance, relative to its
    /// own spawn.
    pub convergence_period: Option<usize>,
    /// Mean cost over its whole life.
    pub mean_cost: f64,
    /// Mean cost over its first 8 periods — the learning-phase price.
    /// Cold slices pay the max-resources `S_0` warm-up box here; warm
    /// slices start from the donor's posterior instead, so comparing
    /// this across arms is the first-K-period regret of cold starting.
    pub early_cost: f64,
    /// Mean cost over its last 10 periods.
    pub tail_cost: f64,
    /// Constraint satisfaction rate after its first 6 periods.
    pub satisfaction: f64,
}

/// Aggregate outcome of one fleet run. Every number is a pure function
/// of [`FleetConfig`] — wall-clock and thread count never leak in — so
/// [`FleetReport::summary`] is byte-stable across machines and pool
/// sizes.
#[derive(Debug, Clone)]
pub struct FleetReport {
    /// Per-slice outcomes in id order.
    pub slices: Vec<SliceReport>,
    /// Cells in the run.
    pub cells: usize,
    /// Lockstep periods the driver ran until every slice retired.
    pub total_periods: usize,
    /// Total slice-periods stepped (the work unit for throughput).
    pub slice_periods: usize,
    /// Sum of every slice-period's cost `u_t` (eq. 1) — the fleet's
    /// aggregate J.
    pub aggregate_j: f64,
    /// Slices that warm-started.
    pub warm_spawns: u64,
    /// Slices that cold-started.
    pub cold_spawns: u64,
    /// Slices that were refused admission at least once.
    pub admission_rejected: u64,
    /// Total failed admission attempts (one slice can retry many
    /// periods).
    pub admission_retries: u64,
    /// Admissions forced because a slice's demand exceeds even an empty
    /// cell's overcommitted budget (a slice alone on its server always
    /// runs).
    pub admission_forced: u64,
    /// Warm-eligible spawns whose nearest donor was outside
    /// [`FleetConfig::transfer_radius`] (they cold-started instead).
    pub transfer_out_of_range: u64,
    /// Slices whose control plane died mid-run (retired early).
    pub failed: u64,
}

impl FleetReport {
    /// Median convergence period over late-wave slices (`spawned_at >
    /// 0`) — the population whose spawns are warm in the warm arm and
    /// cold in the cold arm, so comparing this number across the two
    /// arms is the transfer saving. `None` when no late slice has a
    /// convergence estimate.
    pub fn median_late_convergence(&self) -> Option<f64> {
        let xs: Vec<f64> = self
            .slices
            .iter()
            .filter(|s| s.spawned_at > 0)
            .filter_map(|s| s.convergence_period.map(|c| c as f64))
            .collect();
        if xs.is_empty() {
            None
        } else {
            Some(median(&xs))
        }
    }

    /// Mean cost per slice-period across the fleet.
    pub fn mean_cost(&self) -> f64 {
        if self.slice_periods == 0 {
            0.0
        } else {
            self.aggregate_j / self.slice_periods as f64
        }
    }

    /// Mean constraint-satisfaction rate across slices.
    pub fn mean_satisfaction(&self) -> f64 {
        if self.slices.is_empty() {
            return 1.0;
        }
        self.slices.iter().map(|s| s.satisfaction).sum::<f64>() / self.slices.len() as f64
    }

    /// A deterministic one-paragraph summary: identical bytes for
    /// identical configs regardless of thread count (pinned by
    /// `tests/fleet.rs`).
    pub fn summary(&self) -> String {
        let conv = match self.median_late_convergence() {
            Some(c) => format!("{c:.1}"),
            None => "n/a".into(),
        };
        format!(
            "slices={} cells={} lockstep_periods={} slice_periods={} \
             warm={} cold={} rejected={} retries={} forced={} \
             out_of_range={} failed={} aggregate_j={:.3} mean_cost={:.3} \
             satisfaction={:.4} late_median_convergence={}",
            self.slices.len(),
            self.cells,
            self.total_periods,
            self.slice_periods,
            self.warm_spawns,
            self.cold_spawns,
            self.admission_rejected,
            self.admission_retries,
            self.admission_forced,
            self.transfer_out_of_range,
            self.failed,
            self.aggregate_j,
            self.mean_cost(),
            self.mean_satisfaction(),
            conv,
        )
    }
}

/// Fleet-level observability handles (all cheap clones of registry
/// series; a disabled registry turns every record into a no-op).
struct FleetMetrics {
    running: Gauge,
    pending: Gauge,
    spawned_warm: Counter,
    spawned_cold: Counter,
    retired: Counter,
    failed: Counter,
    rejected: Counter,
    retries: Counter,
    forced: Counter,
    out_of_range: Counter,
    aggregate_j: Gauge,
    cell_load: Vec<Gauge>,
}

impl FleetMetrics {
    fn new(reg: &Registry, cells: usize) -> Self {
        reg.describe("edgebol_fleet_running_slices", "Slices currently stepping");
        reg.describe("edgebol_fleet_pending_slices", "Slices waiting for admission");
        reg.describe("edgebol_fleet_spawned_total", "Slices admitted, by spawn mode");
        reg.describe("edgebol_fleet_retired_total", "Slices that completed their lifetime");
        reg.describe("edgebol_fleet_failed_total", "Slices whose control plane died");
        reg.describe(
            "edgebol_fleet_admission_rejected_total",
            "Slices refused admission at least once",
        );
        reg.describe("edgebol_fleet_admission_retries_total", "Failed admission attempts");
        reg.describe(
            "edgebol_fleet_admission_forced_total",
            "Admissions forced into an empty cell over budget",
        );
        reg.describe(
            "edgebol_fleet_transfer_out_of_range_total",
            "Warm-eligible spawns degraded to cold: nearest donor out of range",
        );
        reg.describe("edgebol_fleet_aggregate_j", "Running sum of every slice-period's cost");
        reg.describe("edgebol_fleet_gpu_load", "Admitted demand units per cell");
        FleetMetrics {
            running: reg.gauge("edgebol_fleet_running_slices"),
            pending: reg.gauge("edgebol_fleet_pending_slices"),
            spawned_warm: reg.counter_with("edgebol_fleet_spawned_total", &[("mode", "warm")]),
            spawned_cold: reg.counter_with("edgebol_fleet_spawned_total", &[("mode", "cold")]),
            retired: reg.counter("edgebol_fleet_retired_total"),
            failed: reg.counter("edgebol_fleet_failed_total"),
            rejected: reg.counter("edgebol_fleet_admission_rejected_total"),
            retries: reg.counter("edgebol_fleet_admission_retries_total"),
            forced: reg.counter("edgebol_fleet_admission_forced_total"),
            out_of_range: reg.counter("edgebol_fleet_transfer_out_of_range_total"),
            aggregate_j: reg.gauge("edgebol_fleet_aggregate_j"),
            cell_load: (0..cells)
                .map(|c| reg.gauge_with("edgebol_fleet_gpu_load", &[("cell", &c.to_string())]))
                .collect(),
        }
    }
}

/// A fleet of EdgeBOL slices sharing M GPU-backed cells.
pub struct Fleet {
    cfg: FleetConfig,
    metrics: Registry,
    journal: Option<Arc<Journal>>,
}

impl Fleet {
    /// Builds a fleet from `cfg`. Observability is off by default; wire
    /// it with [`Fleet::with_metrics`] / [`Fleet::with_journal`].
    ///
    /// ```
    /// use edgebol_fleet::{Fleet, FleetConfig};
    ///
    /// let mut cfg = FleetConfig::quick(6);
    /// cfg.periods = 12;
    /// let report = Fleet::new(cfg).run();
    /// assert_eq!(report.slices.len(), 6);
    /// // The late wave spawned after the seed wave and warm-started.
    /// assert!(report.warm_spawns + report.cold_spawns == 6);
    /// assert!(report.slices.iter().any(|s| s.spawned_at > 0));
    /// ```
    pub fn new(cfg: FleetConfig) -> Self {
        assert!(cfg.slices > 0, "a fleet needs at least one slice");
        assert!(cfg.cells > 0, "a fleet needs at least one cell");
        assert!(cfg.periods > 0, "slices must live at least one period");
        assert!(cfg.gpu_capacity > 0.0 && cfg.overcommit >= 1.0, "admission budget must be real");
        Fleet { cfg, metrics: Registry::disabled(), journal: None }
    }

    /// Records fleet gauges and counters into `reg` (share it with
    /// [`edgebol_bench::ops_server`] to expose them on `/metrics`).
    pub fn with_metrics(mut self, reg: Registry) -> Self {
        self.metrics = reg;
        self
    }

    /// Streams slice lifecycle events (layer `fleet`) into `journal`.
    pub fn with_journal(mut self, journal: Arc<Journal>) -> Self {
        self.journal = Some(journal);
        self
    }

    fn journal_event(
        &self,
        kind: &'static str,
        period: usize,
        fields: Vec<(&'static str, String)>,
    ) {
        if let Some(j) = &self.journal {
            j.record(Layer::Fleet, kind, Some(period as u64), fields);
        }
    }

    /// Per-slice GPU demand estimate: a base share plus a per-user
    /// share, so heavier slices claim more of the admission budget.
    fn demand_of(scenario: &Scenario) -> f64 {
        0.1 + 0.05 * scenario.num_users() as f64
    }

    /// Runs the fleet to completion: every slice spawns (modulo
    /// admission delay), lives [`FleetConfig::periods`] periods and
    /// retires. Returns the deterministic report.
    pub fn run(&mut self) -> FleetReport {
        let cfg = self.cfg.clone();
        let fm = FleetMetrics::new(&self.metrics, cfg.cells);
        let seed_wave = cfg.seed_wave();
        let mut slots: Vec<SliceSlot> = (0..cfg.slices)
            .map(|i| {
                let scenario = Scenario::fleet_slice(i as u64);
                SliceSlot {
                    id: i as u64,
                    cell: i % cfg.cells,
                    demand: Self::demand_of(&scenario),
                    phase: SlicePhase::Pending {
                        eligible_at: if i < seed_wave { 0 } else { cfg.stagger },
                    },
                    runner: None,
                    trace: Trace::default(),
                    unit_ctx: [0.0; 3],
                    spawned_at: 0,
                    warm: false,
                    donor: None,
                    completed: 0,
                    failed: false,
                    rejected_once: false,
                    experience: None,
                }
            })
            .collect();
        let mut cell_load = vec![0.0f64; cfg.cells];
        let mut report = FleetReport {
            slices: Vec::new(),
            cells: cfg.cells,
            total_periods: 0,
            slice_periods: 0,
            aggregate_j: 0.0,
            warm_spawns: 0,
            cold_spawns: 0,
            admission_rejected: 0,
            admission_retries: 0,
            admission_forced: 0,
            transfer_out_of_range: 0,
            failed: 0,
        };
        let threads = cfg
            .threads
            .or_else(edgebol_bench::env::threads)
            .or_else(|| std::thread::available_parallelism().ok().map(|n| n.get()))
            .unwrap_or(1);

        let mut t = 0usize;
        loop {
            let all_retired = slots.iter().all(|s| s.phase == SlicePhase::Retired);
            if all_retired {
                break;
            }
            assert!(
                t < 1_000_000,
                "fleet driver did not converge: {} slices still pending at period {t}",
                slots.iter().filter(|s| s.phase != SlicePhase::Retired).count()
            );

            // Admission pass (driver thread, id order — deterministic).
            for i in 0..slots.len() {
                let eligible = match slots[i].phase {
                    SlicePhase::Pending { eligible_at } => eligible_at <= t,
                    _ => false,
                };
                if !eligible {
                    continue;
                }
                let (cell, demand) = (slots[i].cell, slots[i].demand);
                let budget = cfg.gpu_capacity * cfg.overcommit;
                let empty = cell_load[cell] == 0.0;
                if cell_load[cell] + demand <= budget || empty {
                    if empty && demand > budget {
                        report.admission_forced += 1;
                        fm.forced.inc();
                    }
                    self.spawn(&cfg, &mut slots, i, t, &mut report, &fm);
                    if slots[i].phase == SlicePhase::Running {
                        cell_load[cell] += demand;
                    }
                } else {
                    report.admission_retries += 1;
                    fm.retries.inc();
                    if !slots[i].rejected_once {
                        slots[i].rejected_once = true;
                        report.admission_rejected += 1;
                        fm.rejected.inc();
                        self.journal_event(
                            "admission_rejected",
                            t,
                            vec![
                                ("slice", slots[i].id.to_string()),
                                ("cell", cell.to_string()),
                                ("load", format!("{:.2}", cell_load[cell])),
                            ],
                        );
                    }
                }
            }

            // Contention pass: overcommitted cells slow everyone down.
            for (c, load) in cell_load.iter().enumerate() {
                fm.cell_load[c].set(*load);
            }
            for slot in slots.iter_mut() {
                if slot.phase == SlicePhase::Running {
                    let factor = (cell_load[slot.cell] / cfg.gpu_capacity).max(1.0);
                    if let Some(r) = &mut slot.runner {
                        r.get_mut().unwrap_or_else(|e| e.into_inner()).set_gpu_contention(factor);
                    }
                }
            }

            // Lockstep step across worker threads; results come back in
            // slice-index order regardless of which worker ran what.
            let running: Vec<usize> =
                (0..slots.len()).filter(|&i| slots[i].phase == SlicePhase::Running).collect();
            fm.running.set(running.len() as f64);
            fm.pending.set(
                slots.iter().filter(|s| matches!(s.phase, SlicePhase::Pending { .. })).count()
                    as f64,
            );
            let slots_ref = &slots;
            let running_ref = &running;
            let results = parallel_map_threads(threads.min(running.len().max(1)), running.len(), {
                move |k| {
                    let slot = &slots_ref[running_ref[k]];
                    let mut orch = slot
                        .runner
                        .as_ref()
                        .expect("running slice has a runner")
                        .lock()
                        .unwrap_or_else(|e| e.into_inner());
                    orch.try_step()
                }
            });

            // Collect in index order on the driver thread, so float
            // accumulation never depends on scheduling.
            for (k, res) in results.into_iter().enumerate() {
                let i = running[k];
                match res {
                    Ok(rec) => {
                        report.aggregate_j += rec.cost;
                        report.slice_periods += 1;
                        slots[i].trace.records.push(rec);
                        slots[i].completed += 1;
                        if slots[i].completed >= cfg.periods {
                            self.retire(&mut slots[i], t, false, &mut report, &fm);
                            cell_load[slots[i].cell] -= slots[i].demand;
                        }
                    }
                    Err(e) => {
                        self.journal_event(
                            "slice_failed",
                            t,
                            vec![("slice", slots[i].id.to_string()), ("error", e.to_string())],
                        );
                        self.retire(&mut slots[i], t, true, &mut report, &fm);
                        cell_load[slots[i].cell] -= slots[i].demand;
                    }
                }
            }
            fm.aggregate_j.set(report.aggregate_j);
            t += 1;
        }
        report.total_periods = t;
        fm.running.set(0.0);
        fm.pending.set(0.0);
        self.journal_event(
            "fleet_done",
            t,
            vec![
                ("slices", cfg.slices.to_string()),
                ("slice_periods", report.slice_periods.to_string()),
            ],
        );
        report.slices.sort_by_key(|s| s.id);
        report
    }

    /// Spawns slice `i` at period `t`: builds its environment, picks a
    /// donor if warm-starting, and wires the orchestrator over the
    /// in-process poll transport (cheapest at fleet scale).
    fn spawn(
        &self,
        cfg: &FleetConfig,
        slots: &mut [SliceSlot],
        i: usize,
        t: usize,
        report: &mut FleetReport,
        fm: &FleetMetrics,
    ) {
        let id = slots[i].id;
        let env_seed = cfg.seed.wrapping_add(id.wrapping_mul(0x9E37_79B9));
        let mut env = FlowTestbed::new(Calibration::fast(), Scenario::fleet_slice(id), env_seed);
        let unit_ctx = env.observe_context().to_unit();

        // Donor selection: nearest eligible slice in unit context space,
        // accepted only within the transfer radius.
        let mut donor: Option<(usize, f64)> = None;
        if cfg.warm_start && t > 0 {
            for (j, cand) in slots.iter().enumerate() {
                let eligible = j != i
                    && cand.completed >= cfg.min_donor_periods
                    && matches!(cand.phase, SlicePhase::Running | SlicePhase::Retired)
                    && !cand.failed;
                if !eligible {
                    continue;
                }
                let d = dist(&unit_ctx, &cand.unit_ctx);
                if donor.map(|(_, best)| d < best).unwrap_or(true) {
                    donor = Some((j, d));
                }
            }
        }
        let (experience, donor_id) = match donor {
            Some((j, d)) if d <= cfg.transfer_radius => {
                let exp = match &slots[j].experience {
                    Some(e) => Some(e.clone()),
                    None => slots[j].runner.as_ref().and_then(|r| {
                        r.lock().unwrap_or_else(|e| e.into_inner()).agent_experience()
                    }),
                };
                (exp, Some(slots[j].id))
            }
            Some((_, _)) => {
                report.transfer_out_of_range += 1;
                fm.out_of_range.inc();
                (None, None)
            }
            None => (None, None),
        };

        let spec = ProblemSpec::new(1.0, 8.0, cfg.d_max, cfg.rho_min);
        let mut agent = EdgeBolAgent::quick_for_tests(&spec, env_seed.wrapping_add(1));
        let warm = match &experience {
            Some(exp) if !exp.is_empty() => {
                let cap = exp.len().saturating_sub(cfg.transfer_cap);
                agent = agent.with_experience(&exp[cap..]);
                true
            }
            _ => false,
        };

        let slot = &mut slots[i];
        slot.unit_ctx = unit_ctx;
        slot.spawned_at = t;
        slot.warm = warm;
        slot.donor = if warm { donor_id } else { None };
        match Orchestrator::new_with_transport(
            Box::new(env),
            Box::new(agent),
            spec,
            ChaosConfig::disabled(),
            Registry::disabled(),
            TransportKind::Poll,
        ) {
            Ok(orch) => {
                slot.runner = Some(Mutex::new(orch));
                slot.phase = SlicePhase::Running;
                if warm {
                    report.warm_spawns += 1;
                    fm.spawned_warm.inc();
                } else {
                    report.cold_spawns += 1;
                    fm.spawned_cold.inc();
                }
                self.journal_event(
                    "slice_spawned",
                    t,
                    vec![
                        ("slice", id.to_string()),
                        ("cell", slot.cell.to_string()),
                        ("mode", if warm { "warm".into() } else { "cold".into() }),
                        ("donor", slot.donor.map(|d| d.to_string()).unwrap_or_else(|| "-".into())),
                    ],
                );
            }
            Err(e) => {
                // The in-process control plane cannot realistically fail
                // to wire up, but a dead slice must not wedge the fleet.
                slot.phase = SlicePhase::Retired;
                slot.failed = true;
                report.failed += 1;
                fm.failed.inc();
                report.slices.push(SliceReport {
                    id,
                    cell: slot.cell,
                    spawned_at: t,
                    warm: false,
                    donor: None,
                    periods: 0,
                    convergence_period: None,
                    mean_cost: 0.0,
                    early_cost: 0.0,
                    tail_cost: 0.0,
                    satisfaction: 1.0,
                });
                self.journal_event(
                    "slice_failed",
                    t,
                    vec![("slice", id.to_string()), ("error", e.to_string())],
                );
            }
        }
    }

    /// Retires a slice: exports its final experience for future donors,
    /// drops the orchestrator and records its report row.
    fn retire(
        &self,
        slot: &mut SliceSlot,
        t: usize,
        failed: bool,
        report: &mut FleetReport,
        fm: &FleetMetrics,
    ) {
        if let Some(r) = slot.runner.take() {
            let orch = r.into_inner().unwrap_or_else(|e| e.into_inner());
            slot.experience = orch.agent_experience();
        }
        slot.phase = SlicePhase::Retired;
        slot.failed = slot.failed || failed;
        if failed {
            report.failed += 1;
            fm.failed.inc();
        } else {
            fm.retired.inc();
        }
        let conv = slot.trace.convergence_period(0.1);
        self.journal_event(
            "slice_retired",
            t,
            vec![
                ("slice", slot.id.to_string()),
                ("periods", slot.completed.to_string()),
                ("convergence", conv.map(|c| c.to_string()).unwrap_or_else(|| "-".into())),
            ],
        );
        report.slices.push(SliceReport {
            id: slot.id,
            cell: slot.cell,
            spawned_at: slot.spawned_at,
            warm: slot.warm,
            donor: slot.donor,
            periods: slot.completed,
            convergence_period: conv,
            mean_cost: if slot.completed == 0 {
                0.0
            } else {
                slot.trace.costs().iter().sum::<f64>() / slot.completed as f64
            },
            early_cost: {
                let k = slot.completed.min(8);
                if k == 0 {
                    0.0
                } else {
                    slot.trace.costs()[..k].iter().sum::<f64>() / k as f64
                }
            },
            tail_cost: if slot.completed == 0 { 0.0 } else { slot.trace.tail_mean_cost(10) },
            satisfaction: slot.trace.satisfaction_rate(6),
        });
    }
}

/// Euclidean distance in unit context space.
fn dist(a: &[f64; 3], b: &[f64; 3]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum::<f64>().sqrt()
}

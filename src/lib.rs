//! `edgebol-suite` — umbrella crate of the EdgeBOL reproduction workspace.
//!
//! This crate exists to host the repository-level integration tests
//! (`tests/`) and runnable examples (`examples/`) that span multiple member
//! crates. It re-exports every member so examples and downstream users can
//! depend on a single crate:
//!
//! * [`linalg`] — dense linear algebra (Cholesky, triangular solves).
//! * [`gp`] — Gaussian-process regression with Matérn kernels.
//! * [`nn`] — minimal MLP/Adam substrate used by the DDPG baseline.
//! * [`media`] — synthetic scenes, detector model, mAP evaluator.
//! * [`ran`] — LTE vRAN model (MCS/TBS, scheduler, BBU power).
//! * [`edge`] — GPU edge-server model.
//! * [`oran`] — O-RAN A1/E2 control plane and transports.
//! * [`testbed`] — discrete-event + flow-level testbed simulator.
//! * [`bandit`] — contextual bandits: EdgeBOL, baselines, oracle, DDPG.
//! * [`core`] — the EdgeBOL orchestration API (the paper's contribution).
//! * [`metrics`] — zero-dependency observability registry (counters,
//!   gauges, histograms; see DESIGN.md §8).

pub use edgebol_bandit as bandit;
pub use edgebol_core as core;
pub use edgebol_edge as edge;
pub use edgebol_gp as gp;
pub use edgebol_linalg as linalg;
pub use edgebol_media as media;
pub use edgebol_metrics as metrics;
pub use edgebol_nn as nn;
pub use edgebol_oran as oran;
pub use edgebol_ran as ran;
pub use edgebol_testbed as testbed;
